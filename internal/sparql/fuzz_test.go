package sparql

// Native fuzz targets for the parser surface: arbitrary bytes must
// produce either a parse result or an error — never a panic, and the
// lexer must always make progress. Seed corpora live under
// testdata/fuzz/; CI runs each target for a short smoke window.

import (
	"testing"

	"gstored/internal/rdf"
)

var fuzzQuerySeeds = []string{
	"SELECT ?s WHERE { ?s <http://ex/p> ?o . }",
	"PREFIX ex: <http://ex/>\nSELECT * WHERE { ?x ex:name ?n . ?x a ex:Person . }",
	"SELECT DISTINCT ?s WHERE { ?s ?p \"lit\"@en . } ORDER BY ?s LIMIT 5 OFFSET 2",
	"SELECT REDUCED ?o WHERE { <http://ex/a> <http://ex/p> ?o . ?o <http://ex/q> 42 . }",
	"# comment\nBASE <http://ex/>\nSELECT ?s WHERE { ?s <p> _:b0 . }",
	"SELECT ?s WHERE { ?s ?p \"esc\\\"ape\\n\"^^<http://www.w3.org/2001/XMLSchema#string> . }",
	"",
	"SELECT",
	"SELECT ?s WHERE { ?s ?p ?o",
	"\x00\xff{}?",
}

func FuzzParse(f *testing.F) {
	for _, s := range fuzzQuerySeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src, rdf.NewDictionary())
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned neither a query nor an error", src)
		}
	})
}

func FuzzParseUpdate(f *testing.F) {
	for _, s := range []string{
		"INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b> }",
		"DELETE DATA { <http://ex/a> <http://ex/p> \"v\" }",
		"PREFIX ex: <http://ex/>\nINSERT DATA { ex:a ex:p ex:b . ex:b ex:p \"x\"@en }",
		"INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b> } ;\nDELETE DATA { <http://ex/c> <http://ex/p> <http://ex/d> }",
		"INSERT DATA { GRAPH <http://ex/g> { <a> <b> <c> } }",
		"INSERT",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := ParseUpdate(src)
		if err == nil && u == nil {
			t.Fatalf("ParseUpdate(%q) returned neither an update nor an error", src)
		}
	})
}

func FuzzLexer(f *testing.F) {
	for _, s := range fuzzQuerySeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		l := &lexer{src: src}
		// Every token consumes at least one byte, so the token count is
		// bounded by len(src); running past that bound means the lexer
		// stopped making progress.
		for i := 0; i <= len(src); i++ {
			tok, err := l.next()
			if err != nil || tok.kind == tokEOF {
				return
			}
		}
		t.Fatalf("lexer made no progress on %q", src)
	})
}
