package sparql

import (
	"strings"
	"testing"

	"gstored/internal/query"
	"gstored/internal/rdf"
)

// The paper's Section I example query, verbatim modulo whitespace.
const paperQuerySrc = `
SELECT ?p2 ?l WHERE {
  ?t <label> ?l .
  ?p1 <influencedBy> ?p2 .
  ?p2 <mainInterest> ?t .
  ?p1 <name> "Crispin Wright"@en .
}`

func TestParsePaperQuery(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(paperQuerySrc, d)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("got %d vertices / %d edges, want 5 / 4 (Fig. 2)", g.NumVertices(), g.NumEdges())
	}
	if len(g.Projection) != 2 {
		t.Fatalf("projection = %v, want 2 vars", g.Projection)
	}
	if g.Vars[g.Projection[0]] != "p2" || g.Vars[g.Projection[1]] != "l" {
		t.Errorf("projection names = %q, %q", g.Vars[g.Projection[0]], g.Vars[g.Projection[1]])
	}
	// The constant vertex "Crispin Wright"@en must exist.
	found := false
	for _, v := range g.Vertices {
		if !v.IsVar() {
			term, _ := d.Decode(v.Const)
			if term == rdf.NewLangLiteral("Crispin Wright", "en") {
				found = true
			}
		}
	}
	if !found {
		t.Error("constant literal vertex missing")
	}
}

func TestParsePrefixes(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(`
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ex: <http://example.org/>
SELECT ?n WHERE { ?x foaf:name ?n . ?x a ex:Person . }`, d)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	wantPred, _ := d.Lookup(rdf.NewIRI("http://xmlns.com/foaf/0.1/name"))
	if g.Edges[0].Label != wantPred {
		t.Error("foaf:name did not expand correctly")
	}
	wantType, _ := d.Lookup(rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"))
	if g.Edges[1].Label != wantType {
		t.Error("'a' did not expand to rdf:type")
	}
	wantClass, _ := d.Lookup(rdf.NewIRI("http://example.org/Person"))
	if g.Vertices[g.Edges[1].To].Const != wantClass {
		t.Error("ex:Person object did not expand")
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(`SELECT * WHERE {
		?x <p> ?a ; <q> ?b , ?c .
		?y <r> ?x
	}`, d)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	// SELECT * ⇒ empty projection (all vars).
	if len(g.Projection) != 0 {
		t.Errorf("projection = %v, want empty for SELECT *", g.Projection)
	}
	// Edges 0,1,2 share subject ?x.
	if g.Edges[0].From != g.Edges[1].From || g.Edges[1].From != g.Edges[2].From {
		t.Error("';' list did not share subject")
	}
	if g.Edges[1].Label != g.Edges[2].Label {
		t.Error("',' list did not share predicate")
	}
}

func TestParseVariablePredicate(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(`SELECT ?p WHERE { <http://s> ?p ?o . ?o ?p <http://z> }`, d)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !g.Edges[0].HasVarLabel() || !g.Edges[1].HasVarLabel() {
		t.Fatal("variable predicates not recognized")
	}
	if g.Edges[0].LabelVar != g.Edges[1].LabelVar {
		t.Error("shared predicate variable got two indices")
	}
}

func TestParseNumericLiterals(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(`SELECT ?x WHERE { ?x <age> 42 . ?x <height> 1.75 }`, d)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	obj0, _ := d.Decode(g.Vertices[g.Edges[0].To].Const)
	if obj0 != rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer") {
		t.Errorf("integer literal = %#v", obj0)
	}
	obj1, _ := d.Decode(g.Vertices[g.Edges[1].To].Const)
	if obj1 != rdf.NewTypedLiteral("1.75", "http://www.w3.org/2001/XMLSchema#decimal") {
		t.Errorf("decimal literal = %#v", obj1)
	}
}

// TestParseDistinct pins the headline bug: the parser used to accept
// DISTINCT and then drop the flag on the floor, so clients silently got
// the duplicate-bearing multiset. REDUCED stays a spec-legal no-op.
func TestParseDistinct(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(`SELECT DISTINCT ?x WHERE { ?x <p> ?y }`, d)
	if err != nil {
		t.Fatalf("Parse DISTINCT: %v", err)
	}
	if !g.Distinct {
		t.Error("DISTINCT not propagated to Graph.Distinct")
	}
	g, err = Parse(`SELECT REDUCED ?x WHERE { ?x <p> ?y }`, d)
	if err != nil {
		t.Fatalf("Parse REDUCED: %v", err)
	}
	if g.Distinct {
		t.Error("REDUCED must not set Distinct (returning the multiset is conformant)")
	}
	g, err = Parse(`SELECT ?x WHERE { ?x <p> ?y }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if g.Distinct || g.HasLimit || g.Offset != 0 {
		t.Errorf("plain SELECT carries modifiers: %+v", g)
	}
}

func TestParseLimitOffset(t *testing.T) {
	d := rdf.NewDictionary()
	cases := []struct {
		src          string
		wantHasLimit bool
		wantLimit    int
		wantOffset   int
		wantDistinct bool
	}{
		{`SELECT ?x WHERE { ?x <p> ?y } LIMIT 10`, true, 10, 0, false},
		{`SELECT ?x WHERE { ?x <p> ?y } OFFSET 5`, false, 0, 5, false},
		{`SELECT ?x WHERE { ?x <p> ?y } LIMIT 10 OFFSET 5`, true, 10, 5, false},
		// The SPARQL grammar allows either order.
		{`SELECT ?x WHERE { ?x <p> ?y } OFFSET 5 LIMIT 10`, true, 10, 5, false},
		{`SELECT ?x WHERE { ?x <p> ?y } LIMIT 0`, true, 0, 0, false},
		{`SELECT DISTINCT ?x WHERE { ?x <p> ?y } limit 3 offset 1`, true, 3, 1, true},
	}
	for _, c := range cases {
		g, err := Parse(c.src, d)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if g.HasLimit != c.wantHasLimit || g.Limit != c.wantLimit || g.Offset != c.wantOffset || g.Distinct != c.wantDistinct {
			t.Errorf("Parse(%q): hasLimit=%v limit=%d offset=%d distinct=%v, want %v/%d/%d/%v",
				c.src, g.HasLimit, g.Limit, g.Offset, g.Distinct,
				c.wantHasLimit, c.wantLimit, c.wantOffset, c.wantDistinct)
		}
	}
}

func TestParseLimitOffsetErrors(t *testing.T) {
	d := rdf.NewDictionary()
	cases := []struct{ name, src string }{
		{"negative limit", `SELECT ?x WHERE { ?x <p> ?y } LIMIT -1`},
		{"negative offset", `SELECT ?x WHERE { ?x <p> ?y } OFFSET -2`},
		{"signed limit", `SELECT ?x WHERE { ?x <p> ?y } LIMIT +5`},
		{"decimal limit", `SELECT ?x WHERE { ?x <p> ?y } LIMIT 1.5`},
		{"missing limit value", `SELECT ?x WHERE { ?x <p> ?y } LIMIT`},
		{"non-numeric limit", `SELECT ?x WHERE { ?x <p> ?y } LIMIT ten`},
		{"duplicate limit", `SELECT ?x WHERE { ?x <p> ?y } LIMIT 1 LIMIT 2`},
		{"duplicate offset", `SELECT ?x WHERE { ?x <p> ?y } OFFSET 1 OFFSET 2`},
		{"duplicate limit split", `SELECT ?x WHERE { ?x <p> ?y } LIMIT 1 OFFSET 2 LIMIT 3`},
		{"trailing garbage after modifiers", `SELECT ?x WHERE { ?x <p> ?y } LIMIT 1 extra`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, d); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseComments(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(`# leading comment
SELECT ?x WHERE {
  ?x <p> ?y . # trailing comment
}`, d)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

func TestParseErrors(t *testing.T) {
	d := rdf.NewDictionary()
	cases := []struct{ name, src string }{
		{"missing select", `WHERE { ?x <p> ?y }`},
		{"missing brace", `SELECT ?x WHERE ?x <p> ?y`},
		{"unterminated brace", `SELECT ?x WHERE { ?x <p> ?y`},
		{"undeclared prefix", `SELECT ?x WHERE { ?x foaf:name ?y }`},
		{"trailing garbage", `SELECT ?x WHERE { ?x <p> ?y } extra`},
		{"unterminated iri", `SELECT ?x WHERE { ?x <p ?y }`},
		{"unterminated literal", `SELECT ?x WHERE { ?x <p> "oops }`},
		{"empty var", `SELECT ? WHERE { ?x <p> ?y }`},
		{"literal predicate", `SELECT ?x WHERE { ?x "p" ?y }`},
		{"select unknown var", `SELECT ?zz WHERE { ?x <p> ?y }`},
		{"base unsupported", `BASE <http://b/> SELECT ?x WHERE { ?x <p> ?y }`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, d); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseEscapedLiteral(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(`SELECT ?x WHERE { ?x <says> "he said \"hi\"\n" }`, d)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	obj, _ := d.Decode(g.Vertices[g.Edges[0].To].Const)
	if obj.Value != "he said \"hi\"\n" {
		t.Errorf("literal = %q", obj.Value)
	}
}

func TestParserAndBuilderAgree(t *testing.T) {
	// The same query built both ways must be structurally identical.
	d := rdf.NewDictionary()
	parsed, err := Parse(paperQuerySrc, d)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	built := query.NewBuilder(d).
		Triple(query.Var("t"), query.IRI("label"), query.Var("l")).
		Triple(query.Var("p1"), query.IRI("influencedBy"), query.Var("p2")).
		Triple(query.Var("p2"), query.IRI("mainInterest"), query.Var("t")).
		Triple(query.Var("p1"), query.IRI("name"), query.Term(rdf.NewLangLiteral("Crispin Wright", "en"))).
		Select("p2", "l").
		MustBuild()
	if parsed.String() != built.String() {
		t.Errorf("parsed:\n  %s\nbuilt:\n  %s", parsed, built)
	}
	if strings.Join(parsed.Vars, ",") != strings.Join(built.Vars, ",") {
		t.Errorf("vars differ: %v vs %v", parsed.Vars, built.Vars)
	}
}
