package sparql

import (
	"strings"

	"gstored/internal/rdf"
)

// Update is a parsed SPARQL 1.1 Update request: a sequence of INSERT DATA
// / DELETE DATA operations over ground triples, executed in order. The
// quad forms (GRAPH blocks) and the pattern forms (DELETE/INSERT ...
// WHERE, DELETE WHERE, LOAD, CLEAR, ...) are out of scope and rejected
// at parse time with a specific message.
type Update struct {
	Ops []UpdateOp
}

// UpdateOp is one INSERT DATA or DELETE DATA operation.
type UpdateOp struct {
	// Delete distinguishes DELETE DATA (true) from INSERT DATA (false).
	Delete bool
	// Triples are the ground triples of the data block, in source order.
	Triples []GroundTriple
}

// GroundTriple is one concrete triple of a data block: no variables, no
// blank nodes — every position is an IRI or (object only) a literal.
type GroundTriple struct {
	S, P, O rdf.Term
}

// NumTriples reports the total triple count across all operations.
func (u *Update) NumTriples() int {
	n := 0
	for _, op := range u.Ops {
		n += len(op.Triples)
	}
	return n
}

// ParseUpdate parses a SPARQL 1.1 Update request restricted to the
// INSERT DATA / DELETE DATA forms over ground triples. Operations may be
// separated by ';' (a trailing ';' is permitted, per the grammar), share
// one prologue of PREFIX declarations, and use the same triple syntax as
// query patterns (';'/',' predicate-object lists, the 'a' keyword,
// prefixed names, literals with language tags and datatypes) — minus
// variables and blank nodes, which make a triple non-ground.
//
// Terms are returned at the rdf.Term level, not dictionary-encoded: the
// caller decides whether a term may grow the dictionary (inserts must,
// deletes need not — a term the dictionary has never seen cannot occur
// in any stored triple).
func ParseUpdate(src string) (*Update, error) {
	p := &parser{lex: lexer{src: src}, prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	u := &Update{}
	// Prologue.
	for p.tok.kind == tokKeyword {
		if p.tok.text == "PREFIX" {
			if err := p.parsePrefix(); err != nil {
				return nil, err
			}
			continue
		}
		if p.tok.text == "BASE" {
			return nil, p.errf("BASE declarations are not supported")
		}
		break
	}
	for {
		if p.tok.kind == tokEOF {
			break
		}
		op, err := p.parseUpdateOp()
		if err != nil {
			return nil, err
		}
		u.Ops = append(u.Ops, op)
		if p.tok.kind == tokSemi {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue // a trailing ';' before EOF is fine
		}
		break
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	if len(u.Ops) == 0 {
		return nil, p.errf("empty update request: expected INSERT DATA or DELETE DATA")
	}
	return u, nil
}

// parseUpdateOp parses one "INSERT DATA { ... }" or "DELETE DATA { ... }".
func (p *parser) parseUpdateOp() (UpdateOp, error) {
	if p.tok.kind != tokKeyword || (p.tok.text != "INSERT" && p.tok.text != "DELETE") {
		if p.tok.kind == tokKeyword && p.tok.text == "SELECT" {
			return UpdateOp{}, p.errf("this is the update endpoint: SELECT queries go to the query form")
		}
		return UpdateOp{}, p.errf("expected INSERT DATA or DELETE DATA")
	}
	op := UpdateOp{Delete: p.tok.text == "DELETE"}
	verb := p.tok.text
	if err := p.advance(); err != nil {
		return op, err
	}
	if p.tok.kind != tokKeyword || p.tok.text != "DATA" {
		// Precise messages for the spec forms we deliberately exclude.
		if p.tok.kind == tokKeyword && p.tok.text == "WHERE" {
			return op, p.errf("%s WHERE is not supported: only the ground-data forms INSERT DATA / DELETE DATA are", verb)
		}
		if p.tok.kind == tokLBrace {
			return op, p.errf("%s { ... } WHERE { ... } is not supported: only the ground-data forms INSERT DATA / DELETE DATA are", verb)
		}
		return op, p.errf("expected DATA after %s (only INSERT DATA / DELETE DATA are supported)", verb)
	}
	if err := p.advance(); err != nil {
		return op, err
	}
	if p.tok.kind != tokLBrace {
		return op, p.errf("expected '{' starting the %s DATA block", verb)
	}
	if err := p.advance(); err != nil {
		return op, err
	}
	triples, err := p.parseGroundTriples()
	if err != nil {
		return op, err
	}
	op.Triples = triples
	if p.tok.kind != tokRBrace {
		return op, p.errf("expected '}' closing the %s DATA block", verb)
	}
	return op, p.advance()
}

// parseGroundTriples parses the triples of a data block: the same '.'
// separated, ';'/',' listed surface syntax as a BGP, with every term
// required to be ground.
func (p *parser) parseGroundTriples() ([]GroundTriple, error) {
	var out []GroundTriple
	for p.tok.kind != tokRBrace && p.tok.kind != tokEOF {
		if p.tok.kind == tokKeyword && p.tok.text == "GRAPH" {
			return nil, p.errf("GRAPH blocks (quad data) are not supported: updates target the default graph")
		}
		subj, err := p.parseGroundTerm("subject")
		if err != nil {
			return nil, err
		}
		if subj.IsLiteral() {
			return nil, p.errf("literal subject not allowed")
		}
		for {
			pred, err := p.parseGroundPredicate()
			if err != nil {
				return nil, err
			}
			for {
				obj, err := p.parseGroundTerm("object")
				if err != nil {
					return nil, err
				}
				out = append(out, GroundTriple{S: subj, P: pred, O: obj})
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if p.tok.kind != tokSemi {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			// '; }' and '; .' (trailing semicolon) are permitted.
			if p.tok.kind == tokRBrace || p.tok.kind == tokDot {
				break
			}
		}
		if p.tok.kind == tokDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return out, nil
}

// parseGroundPredicate parses a predicate position term: an IRI, a
// prefixed name, or the 'a' keyword. Variables are what make the pattern
// forms patterns, so they get a ground-data-specific message.
func (p *parser) parseGroundPredicate() (rdf.Term, error) {
	switch p.tok.kind {
	case tokA:
		return rdf.NewIRI(rdfType), p.advance()
	case tokIRI:
		t := rdf.NewIRI(p.tok.text)
		return t, p.advance()
	case tokPName:
		iri, err := p.expandGroundPName(p.tok.text)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), p.advance()
	case tokVar:
		return rdf.Term{}, p.errf("variable ?%s in ground data: INSERT DATA / DELETE DATA take concrete triples only", p.tok.text)
	default:
		return rdf.Term{}, p.errf("expected predicate IRI")
	}
}

// parseGroundTerm parses a subject/object position term.
func (p *parser) parseGroundTerm(role string) (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRI:
		t := rdf.NewIRI(p.tok.text)
		return t, p.advance()
	case tokPName:
		iri, err := p.expandGroundPName(p.tok.text)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), p.advance()
	case tokLiteral:
		var t rdf.Term
		switch {
		case p.tok.lang != "":
			t = rdf.NewLangLiteral(p.tok.text, p.tok.lang)
		case p.tok.dt != "":
			dt := p.tok.dt
			if !strings.Contains(dt, "://") && strings.Contains(dt, ":") {
				expanded, err := p.expandGroundPName(dt)
				if err != nil {
					return rdf.Term{}, err
				}
				dt = expanded
			}
			t = rdf.NewTypedLiteral(p.tok.text, dt)
		default:
			t = rdf.NewLiteral(p.tok.text)
		}
		return t, p.advance()
	case tokNumber:
		text := p.tok.text
		dt := xsdInteger
		if strings.ContainsAny(text, ".eE") {
			dt = xsdDecimal
			if strings.ContainsAny(text, "eE") {
				dt = xsdDouble
			}
		}
		return rdf.NewTypedLiteral(text, dt), p.advance()
	case tokVar:
		return rdf.Term{}, p.errf("variable ?%s in ground data: INSERT DATA / DELETE DATA take concrete triples only", p.tok.text)
	default:
		return rdf.Term{}, p.errf("expected %s term", role)
	}
}

// expandGroundPName expands a prefixed name, catching the blank-node
// label form (_:b) that lexes as a pname with prefix "_": blank nodes
// are not ground, so data blocks reject them explicitly.
func (p *parser) expandGroundPName(pname string) (string, error) {
	if strings.HasPrefix(pname, "_:") {
		return "", p.errf("blank node %s in ground data: INSERT DATA / DELETE DATA take concrete triples only (skolemize with an IRI instead)", pname)
	}
	return p.expandPName(pname)
}
