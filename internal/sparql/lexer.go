// Package sparql implements a lexer and recursive-descent parser for the
// SPARQL basic-graph-pattern fragment evaluated by gstored (Definition 2 of
// the paper): PREFIX declarations, SELECT with projection or * and the
// DISTINCT/REDUCED modifiers, a WHERE block of triple patterns with ';'/','
// predicate-object lists, the 'a' keyword, variables in any position
// including the predicate, IRIs, prefixed names, and literals, followed by
// optional LIMIT/OFFSET clauses. ParseUpdate covers the SPARQL 1.1 Update
// subset gstored's write path executes: sequences of INSERT DATA /
// DELETE DATA operations over ground triples.
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar      // ?name or $name
	tokIRI      // <...>
	tokPName    // prefix:local or prefix: (prefixed name)
	tokLiteral  // "..." with optional @lang / ^^type (type carried separately)
	tokNumber   // integer or decimal
	tokA        // the keyword 'a' (rdf:type)
	tokStar     // *
	tokDot      // .
	tokSemi     // ;
	tokComma    // ,
	tokLBrace   // {
	tokRBrace   // }
	tokLangTag  // @en (attached to literal during lexing)
	tokDatatype // ^^ (attached during lexing)
)

type token struct {
	kind tokenKind
	text string // keyword text (upper-cased), var name, IRI body, literal lexical form, pname, number
	lang string // for tokLiteral
	dt   string // datatype IRI body or pname for tokLiteral
	pos  int    // byte offset, for error messages
}

// SyntaxError reports a SPARQL syntax error with a byte offset into the
// query string.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sparql: offset %d: %s", e.Pos, e.Msg)
}

type lexer struct {
	src string
	pos int
}

var keywords = map[string]bool{
	"SELECT": true, "WHERE": true, "PREFIX": true, "BASE": true,
	"DISTINCT": true, "REDUCED": true, "LIMIT": true, "OFFSET": true,
	// SPARQL 1.1 Update (the INSERT DATA / DELETE DATA subset; GRAPH is
	// lexed so the parser can reject quad forms with a precise message).
	"INSERT": true, "DELETE": true, "DATA": true, "GRAPH": true,
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '?' || c == '$':
		l.pos++
		name := l.takeWhile(isVarChar)
		if name == "" {
			return token{}, l.errf(start, "empty variable name")
		}
		return token{kind: tokVar, text: name, pos: start}, nil
	case c == '<':
		end := strings.IndexByte(l.src[l.pos:], '>')
		if end < 0 {
			return token{}, l.errf(start, "unterminated IRI")
		}
		iri := l.src[l.pos+1 : l.pos+end]
		l.pos += end + 1
		return token{kind: tokIRI, text: iri, pos: start}, nil
	case c == '"':
		return l.lexLiteral(start)
	case c == '{':
		l.pos++
		return token{kind: tokLBrace, pos: start}, nil
	case c == '}':
		l.pos++
		return token{kind: tokRBrace, pos: start}, nil
	case c == '.':
		l.pos++
		return token{kind: tokDot, pos: start}, nil
	case c == ';':
		l.pos++
		return token{kind: tokSemi, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		return l.lexNumber(start)
	case isPNChar(rune(c)) || c == ':':
		word := l.takeWhile(func(r rune) bool { return isPNChar(r) || r == ':' || r == '.' })
		// A trailing '.' terminates the triple, not the name.
		for strings.HasSuffix(word, ".") {
			word = word[:len(word)-1]
			l.pos--
		}
		if word == "a" {
			return token{kind: tokA, pos: start}, nil
		}
		if kw := strings.ToUpper(word); keywords[kw] {
			return token{kind: tokKeyword, text: kw, pos: start}, nil
		}
		if strings.Contains(word, ":") {
			return token{kind: tokPName, text: word, pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected token %q", word)
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func (l *lexer) lexLiteral(start int) (token, error) {
	// l.src[l.pos] == '"'
	i := l.pos + 1
	var sb strings.Builder
	for i < len(l.src) {
		switch l.src[i] {
		case '\\':
			if i+1 >= len(l.src) {
				return token{}, l.errf(start, "dangling escape in literal")
			}
			switch l.src[i+1] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return token{}, l.errf(start, "unknown escape \\%c", l.src[i+1])
			}
			i += 2
		case '"':
			tok := token{kind: tokLiteral, text: sb.String(), pos: start}
			l.pos = i + 1
			// Optional @lang
			if l.pos < len(l.src) && l.src[l.pos] == '@' {
				l.pos++
				tok.lang = l.takeWhile(func(r rune) bool {
					return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-'
				})
				if tok.lang == "" {
					return token{}, l.errf(start, "empty language tag")
				}
				return tok, nil
			}
			// Optional ^^<iri> or ^^pname
			if strings.HasPrefix(l.src[l.pos:], "^^") {
				l.pos += 2
				if l.pos < len(l.src) && l.src[l.pos] == '<' {
					end := strings.IndexByte(l.src[l.pos:], '>')
					if end < 0 {
						return token{}, l.errf(start, "unterminated datatype IRI")
					}
					tok.dt = l.src[l.pos+1 : l.pos+end]
					l.pos += end + 1
				} else {
					tok.dt = l.takeWhile(func(r rune) bool { return isPNChar(r) || r == ':' })
					if tok.dt == "" {
						return token{}, l.errf(start, "missing datatype after ^^")
					}
				}
			}
			return tok, nil
		default:
			sb.WriteByte(l.src[i])
			i++
		}
	}
	return token{}, l.errf(start, "unterminated literal")
}

func (l *lexer) lexNumber(start int) (token, error) {
	n := l.takeWhile(func(r rune) bool {
		return (r >= '0' && r <= '9') || r == '.' || r == '+' || r == '-' || r == 'e' || r == 'E'
	})
	// A trailing '.' is the statement terminator, not part of the number.
	for strings.HasSuffix(n, ".") {
		n = n[:len(n)-1]
		l.pos--
	}
	if n == "" || n == "+" || n == "-" {
		return token{}, l.errf(start, "malformed number")
	}
	return token{kind: tokNumber, text: n, pos: start}, nil
}

func (l *lexer) takeWhile(pred func(rune) bool) string {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if !pred(r) {
			break
		}
		l.pos++
	}
	return l.src[start:l.pos]
}

func isVarChar(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isPNChar(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r) || r > 127
}
