package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"gstored/internal/query"
	"gstored/internal/rdf"
)

// rdfType is the IRI the 'a' keyword abbreviates.
const rdfType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

const (
	xsdInteger = "http://www.w3.org/2001/XMLSchema#integer"
	xsdDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	xsdDouble  = "http://www.w3.org/2001/XMLSchema#double"
)

// Parse parses a SPARQL SELECT query over a basic graph pattern and returns
// the corresponding query graph. Constants are encoded through dict so the
// query is directly evaluable against graphs sharing that dictionary;
// unseen constants are assigned fresh dictionary IDs.
//
// Solution modifiers: SELECT DISTINCT sets Graph.Distinct, and LIMIT /
// OFFSET (in either order, each at most once) set Graph.Limit/Offset.
// SELECT REDUCED is accepted as a spec-legal no-op — REDUCED merely
// *permits* eliminating duplicates, so returning the unreduced multiset
// (the cheapest legal answer here) is conformant.
func Parse(src string, dict *rdf.Dictionary) (*query.Graph, error) {
	return parse(src, query.NewBuilder(dict))
}

// ParseReadOnly is Parse without dictionary mutation: constants the
// dictionary has not seen resolve to placeholder IDs that match nothing
// (see query.NewBuilderReadOnly). Use it for untrusted query streams —
// e.g. a public endpoint — where Parse would let clients grow the shared
// dictionary without bound.
func ParseReadOnly(src string, dict *rdf.Dictionary) (*query.Graph, error) {
	return parse(src, query.NewBuilderReadOnly(dict))
}

func parse(src string, b *query.Builder) (*query.Graph, error) {
	p := &parser{lex: lexer{src: src}, prefixes: map[string]string{}, b: b}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseQuery()
}

type parser struct {
	lex      lexer
	tok      token
	prefixes map[string]string
	b        *query.Builder
	selected []string // projection variable names; nil => SELECT *
	distinct bool
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseQuery() (*query.Graph, error) {
	// Prologue: PREFIX declarations (BASE unsupported but detected).
	for p.tok.kind == tokKeyword {
		switch p.tok.text {
		case "PREFIX":
			if err := p.parsePrefix(); err != nil {
				return nil, err
			}
		case "BASE":
			return nil, p.errf("BASE declarations are not supported")
		default:
			goto selectClause
		}
	}
selectClause:
	if p.tok.kind != tokKeyword || p.tok.text != "SELECT" {
		return nil, p.errf("expected SELECT")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokKeyword && (p.tok.text == "DISTINCT" || p.tok.text == "REDUCED") {
		p.distinct = p.tok.text == "DISTINCT"
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	switch p.tok.kind {
	case tokStar:
		if err := p.advance(); err != nil {
			return nil, err
		}
	case tokVar:
		for p.tok.kind == tokVar {
			p.selected = append(p.selected, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, p.errf("expected '*' or variables after SELECT")
	}
	// Optional WHERE keyword.
	if p.tok.kind == tokKeyword && p.tok.text == "WHERE" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokLBrace {
		return nil, p.errf("expected '{' starting the graph pattern")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.parseBGP(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokRBrace {
		return nil, p.errf("expected '}'")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.parseSolutionModifiers(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	if p.selected != nil {
		p.b.Select(p.selected...)
	}
	if p.distinct {
		p.b.Distinct()
	}
	return p.b.Build()
}

// parseSolutionModifiers parses the LIMIT/OFFSET clauses after the graph
// pattern. The SPARQL 1.1 grammar (LimitOffsetClauses) allows the two in
// either order, each at most once.
func (p *parser) parseSolutionModifiers() error {
	var haveLimit, haveOffset bool
	for p.tok.kind == tokKeyword && (p.tok.text == "LIMIT" || p.tok.text == "OFFSET") {
		kw := p.tok.text
		if (kw == "LIMIT" && haveLimit) || (kw == "OFFSET" && haveOffset) {
			return p.errf("duplicate %s clause", kw)
		}
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokNumber {
			return p.errf("expected a non-negative integer after %s", kw)
		}
		// The grammar takes a bare INTEGER ([0-9]+): a sign — even '+',
		// which Atoi would accept — is a syntax error.
		if strings.HasPrefix(p.tok.text, "+") || strings.HasPrefix(p.tok.text, "-") {
			return p.errf("%s requires an unsigned integer, got %q", kw, p.tok.text)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return p.errf("%s requires a non-negative integer, got %q", kw, p.tok.text)
		}
		if kw == "LIMIT" {
			haveLimit = true
			p.b.Limit(n)
		} else {
			haveOffset = true
			p.b.Offset(n)
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parsePrefix() error {
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokPName || !strings.HasSuffix(p.tok.text, ":") {
		return p.errf("expected 'name:' after PREFIX")
	}
	name := strings.TrimSuffix(p.tok.text, ":")
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokIRI {
		return p.errf("expected IRI after PREFIX %s:", name)
	}
	p.prefixes[name] = p.tok.text
	return p.advance()
}

// parseBGP parses triple patterns with '.' separators and ';'/',' lists.
func (p *parser) parseBGP() error {
	for p.tok.kind != tokRBrace && p.tok.kind != tokEOF {
		subj, err := p.parseNode("subject")
		if err != nil {
			return err
		}
		if err := p.parsePredicateObjectList(subj); err != nil {
			return err
		}
		if p.tok.kind == tokDot {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	return nil
}

func (p *parser) parsePredicateObjectList(subj query.Node) error {
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseNode("object")
			if err != nil {
				return err
			}
			p.b.Triple(subj, pred, obj)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind != tokSemi {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
		// '; }' and '; .' (trailing semicolon) are permitted.
		if p.tok.kind == tokRBrace || p.tok.kind == tokDot {
			return nil
		}
	}
}

func (p *parser) parsePredicate() (query.Node, error) {
	switch p.tok.kind {
	case tokA:
		if err := p.advance(); err != nil {
			return query.Node{}, err
		}
		return query.IRI(rdfType), nil
	case tokVar:
		n := query.Var(p.tok.text)
		return n, p.advance()
	case tokIRI:
		n := query.IRI(p.tok.text)
		return n, p.advance()
	case tokPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return query.Node{}, err
		}
		return query.IRI(iri), p.advance()
	default:
		return query.Node{}, p.errf("expected predicate")
	}
}

func (p *parser) parseNode(role string) (query.Node, error) {
	switch p.tok.kind {
	case tokVar:
		n := query.Var(p.tok.text)
		return n, p.advance()
	case tokIRI:
		n := query.IRI(p.tok.text)
		return n, p.advance()
	case tokPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return query.Node{}, err
		}
		return query.IRI(iri), p.advance()
	case tokLiteral:
		var t rdf.Term
		switch {
		case p.tok.lang != "":
			t = rdf.NewLangLiteral(p.tok.text, p.tok.lang)
		case p.tok.dt != "":
			dt := p.tok.dt
			if !strings.Contains(dt, "://") && strings.Contains(dt, ":") {
				expanded, err := p.expandPName(dt)
				if err != nil {
					return query.Node{}, err
				}
				dt = expanded
			}
			t = rdf.NewTypedLiteral(p.tok.text, dt)
		default:
			t = rdf.NewLiteral(p.tok.text)
		}
		return query.Term(t), p.advance()
	case tokNumber:
		text := p.tok.text
		dt := xsdInteger
		if strings.ContainsAny(text, ".eE") {
			dt = xsdDecimal
			if strings.ContainsAny(text, "eE") {
				dt = xsdDouble
			}
		}
		return query.Term(rdf.NewTypedLiteral(text, dt)), p.advance()
	default:
		return query.Node{}, p.errf("expected %s term", role)
	}
}

func (p *parser) expandPName(pname string) (string, error) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return "", p.errf("malformed prefixed name %q", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errf("undeclared prefix %q", prefix)
	}
	return base + local, nil
}
