package sparql

import (
	"strings"
	"testing"

	"gstored/internal/rdf"
)

func TestLexerTokenKinds(t *testing.T) {
	l := &lexer{src: `SELECT ?x * { } . ; , <http://a> name:x 42 -3.5 "lit"@en "typed"^^<http://t> a`}
	var kinds []tokenKind
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.kind == tokEOF {
			break
		}
		kinds = append(kinds, tok.kind)
	}
	want := []tokenKind{
		tokKeyword, tokVar, tokStar, tokLBrace, tokRBrace, tokDot, tokSemi,
		tokComma, tokIRI, tokPName, tokNumber, tokNumber, tokLiteral,
		tokLiteral, tokA,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerNumberTerminatedByDot(t *testing.T) {
	// "42 ." — statement terminator must not be swallowed by the number.
	l := &lexer{src: `42 . 7. `}
	tok, _ := l.next()
	if tok.kind != tokNumber || tok.text != "42" {
		t.Fatalf("tok = %+v", tok)
	}
	tok, _ = l.next()
	if tok.kind != tokDot {
		t.Fatalf("expected dot, got %+v", tok)
	}
	tok, _ = l.next()
	if tok.kind != tokNumber || tok.text != "7" {
		t.Fatalf("tok = %+v", tok)
	}
	tok, _ = l.next()
	if tok.kind != tokDot {
		t.Fatalf("expected trailing dot, got %+v", tok)
	}
}

func TestLexerPNameTerminatedByDot(t *testing.T) {
	l := &lexer{src: `foaf:name .`}
	tok, _ := l.next()
	if tok.kind != tokPName || tok.text != "foaf:name" {
		t.Fatalf("tok = %+v", tok)
	}
	tok, _ = l.next()
	if tok.kind != tokDot {
		t.Fatalf("expected dot, got %+v", tok)
	}
}

func TestLexerLiteralEscapes(t *testing.T) {
	l := &lexer{src: `"a\nb\t\"c\"\\"`}
	tok, err := l.next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.text != "a\nb\t\"c\"\\" {
		t.Errorf("literal = %q", tok.text)
	}
}

func TestLexerErrors(t *testing.T) {
	bad := []string{
		`"dangling\`,
		`"bad\q"`,
		`"unterminated`,
		`"lit"^^`,
		`"lit"@`,
		"\x01",
		`?`,
	}
	for _, src := range bad {
		l := &lexer{src: src}
		var err error
		for i := 0; i < 4 && err == nil; i++ {
			var tok token
			tok, err = l.next()
			if tok.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lexing %q should fail", src)
		}
	}
}

func TestLexerDatatypePName(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(`PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?x WHERE { ?x <p> "5"^^xsd:int }`, d)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := d.Decode(g.Vertices[g.Edges[0].To].Const)
	if obj.Datatype != "http://www.w3.org/2001/XMLSchema#int" {
		t.Errorf("datatype = %q", obj.Datatype)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	d := rdf.NewDictionary()
	g, err := Parse(`SELECT ?x WHERE { ?x <p> ?y ; }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	g2, err := Parse(`SELECT ?x WHERE { ?x <p> ?y ; . ?y <q> ?z }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Errorf("edges = %d", g2.NumEdges())
	}
}

func TestParseReducedAndStar(t *testing.T) {
	d := rdf.NewDictionary()
	if _, err := Parse(`SELECT REDUCED * WHERE { ?x <p> ?y }`, d); err != nil {
		t.Fatal(err)
	}
}

func TestSyntaxErrorOffset(t *testing.T) {
	d := rdf.NewDictionary()
	src := `SELECT ?x WHERE { ?x <p ?y }`
	_, err := Parse(src, d)
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos <= 0 || se.Pos >= len(src) {
		t.Errorf("offset = %d", se.Pos)
	}
	if !strings.Contains(se.Error(), "offset") {
		t.Errorf("message = %q", se.Error())
	}
}

func TestParseDisconnectedAccepted(t *testing.T) {
	// Disconnected patterns are legal; the engine evaluates components
	// separately.
	d := rdf.NewDictionary()
	g, err := Parse(`SELECT ?x ?w WHERE { ?x <p> ?y . ?w <p> ?z }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if g.IsConnected() {
		t.Error("should be disconnected")
	}
}
