package sparql

import (
	"strings"
	"testing"

	"gstored/internal/rdf"
)

func mustParseUpdate(t *testing.T, src string) *Update {
	t.Helper()
	u, err := ParseUpdate(src)
	if err != nil {
		t.Fatalf("ParseUpdate(%q): %v", src, err)
	}
	return u
}

func TestParseUpdateInsertData(t *testing.T) {
	u := mustParseUpdate(t, `INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b> }`)
	if len(u.Ops) != 1 || u.Ops[0].Delete {
		t.Fatalf("ops = %+v, want one insert", u.Ops)
	}
	ts := u.Ops[0].Triples
	if len(ts) != 1 {
		t.Fatalf("triples = %+v", ts)
	}
	if ts[0].S != rdf.NewIRI("http://ex/a") || ts[0].P != rdf.NewIRI("http://ex/p") || ts[0].O != rdf.NewIRI("http://ex/b") {
		t.Errorf("triple = %+v", ts[0])
	}
}

func TestParseUpdateDeleteData(t *testing.T) {
	u := mustParseUpdate(t, `DELETE DATA { <http://ex/a> <http://ex/p> "v" }`)
	if len(u.Ops) != 1 || !u.Ops[0].Delete {
		t.Fatalf("ops = %+v, want one delete", u.Ops)
	}
	if got := u.Ops[0].Triples[0].O; got != rdf.NewLiteral("v") {
		t.Errorf("object = %+v", got)
	}
}

// TestParseUpdateSurfaceSyntax covers the triple surface forms shared
// with query patterns: prefixed names, the 'a' keyword, ';'/',' lists,
// language tags, datatypes, and bare numbers.
func TestParseUpdateSurfaceSyntax(t *testing.T) {
	u := mustParseUpdate(t, `
		PREFIX ex: <http://ex/>
		INSERT DATA {
			ex:a a ex:Widget ;
			     ex:label "thing"@en , "Ding"@de ;
			     ex:size 42 .
			ex:b ex:weight "1.5"^^<http://www.w3.org/2001/XMLSchema#float>
		}`)
	ts := u.Ops[0].Triples
	if len(ts) != 5 {
		t.Fatalf("got %d triples: %+v", len(ts), ts)
	}
	want := []GroundTriple{
		{rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), rdf.NewIRI("http://ex/Widget")},
		{rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://ex/label"), rdf.NewLangLiteral("thing", "en")},
		{rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://ex/label"), rdf.NewLangLiteral("Ding", "de")},
		{rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://ex/size"), rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")},
		{rdf.NewIRI("http://ex/b"), rdf.NewIRI("http://ex/weight"), rdf.NewTypedLiteral("1.5", "http://www.w3.org/2001/XMLSchema#float")},
	}
	for i, w := range want {
		if ts[i] != w {
			t.Errorf("triple %d = %+v, want %+v", i, ts[i], w)
		}
	}
}

// TestParseUpdateSequence checks ';'-separated operations execute-in-order
// structure, including a trailing semicolon.
func TestParseUpdateSequence(t *testing.T) {
	u := mustParseUpdate(t, `
		INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b> } ;
		DELETE DATA { <http://ex/c> <http://ex/p> <http://ex/d> } ;
	`)
	if len(u.Ops) != 2 || u.Ops[0].Delete || !u.Ops[1].Delete {
		t.Fatalf("ops = %+v, want insert then delete", u.Ops)
	}
	if u.NumTriples() != 2 {
		t.Errorf("NumTriples = %d", u.NumTriples())
	}
}

// TestParseUpdateErrors pins the specific rejections: every excluded
// SPARQL Update form must fail with a message naming what is unsupported
// rather than a generic syntax error.
func TestParseUpdateErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", ``, "empty update request"},
		{"select", `SELECT ?x WHERE { ?x <p> ?y }`, "query form"},
		{"insert-where", `INSERT { <a> <p> <b> } WHERE { <a> <q> <c> }`, "INSERT { ... } WHERE"},
		{"delete-where", `DELETE WHERE { <a> <p> <b> }`, "DELETE WHERE"},
		{"graph-quads", `INSERT DATA { GRAPH <http://ex/g> { <a> <p> <b> } }`, "GRAPH blocks"},
		{"variable-subject", `INSERT DATA { ?x <http://ex/p> <http://ex/b> }`, "concrete triples only"},
		{"variable-predicate", `DELETE DATA { <http://ex/a> ?p <http://ex/b> }`, "concrete triples only"},
		{"blank-node", `INSERT DATA { _:b <http://ex/p> <http://ex/b> }`, "blank node"},
		{"literal-subject", `INSERT DATA { "lit" <http://ex/p> <http://ex/b> }`, "literal subject"},
		{"missing-data", `INSERT <http://ex/a> <http://ex/p> <http://ex/b>`, "only INSERT DATA / DELETE DATA"},
		{"unclosed", `INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b>`, "'}'"},
		{"trailing", `INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b> } garbage`, ""},
		{"undeclared-prefix", `INSERT DATA { ex:a <http://ex/p> <http://ex/b> }`, "undeclared prefix"},
		{"base", `BASE <http://ex/> INSERT DATA { <a> <p> <b> }`, "BASE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseUpdate(tc.src)
			if err == nil {
				t.Fatalf("ParseUpdate(%q) succeeded, want error", tc.src)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestQueryParserStillRejectsUpdateKeywords: adding Update keywords to
// the shared lexer must not let an update slip through the query parser.
func TestQueryParserStillRejectsUpdateKeywords(t *testing.T) {
	dict := rdf.NewDictionary()
	if _, err := Parse(`INSERT DATA { <a> <p> <b> }`, dict); err == nil {
		t.Error("query parser accepted INSERT DATA")
	}
	// And a query using the words as IRI content still parses.
	if _, err := Parse(`SELECT ?x WHERE { ?x <http://ex/insert> ?y }`, dict); err != nil {
		t.Errorf("IRI containing 'insert' failed: %v", err)
	}
}
