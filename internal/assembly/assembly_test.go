package assembly

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gstored/internal/fragment"
	"gstored/internal/lec"
	"gstored/internal/paperexample"
	"gstored/internal/partial"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/store"
)

func paperPMs(t *testing.T) (*paperexample.Example, []*partial.Match) {
	t.Helper()
	ex := paperexample.New()
	d, err := fragment.Build(ex.Store, ex.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	var pms []*partial.Match
	for _, f := range d.Fragments {
		ms, err := partial.Compute(f, ex.Query, partial.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pms = append(pms, ms...)
	}
	return ex, pms
}

func resultVecs(ex *paperexample.Example, rs []Result) [][5]int {
	rev := make(map[rdf.TermID]int)
	for n, id := range ex.V {
		rev[id] = n
	}
	var out [][5]int
	for _, r := range rs {
		var v [5]int
		for i, id := range r.Vec {
			v[i] = rev[id]
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i]) < fmt.Sprint(out[j]) })
	return out
}

// TestPaperAssembly: both assembly algorithms recover exactly the four
// crossing matches of the running example (Example 3 plus the three
// implied by Fig. 1), including the three-way join PM1_1 ⋈ PM3_2 ⋈ PM3_1.
func TestPaperAssembly(t *testing.T) {
	ex, pms := paperPMs(t)
	want := append([][5]int(nil), paperexample.ExpectedCrossingMatches...)
	sort.Slice(want, func(i, j int) bool { return fmt.Sprint(want[i]) < fmt.Sprint(want[j]) })

	lecRes, lecStats := LEC(pms, ex.Query)
	if got := resultVecs(ex, lecRes); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("LEC assembly:\n got %v\nwant %v", got, want)
	}
	basicRes, basicStats := Basic(pms, ex.Query)
	if got := resultVecs(ex, basicRes); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Basic assembly:\n got %v\nwant %v", got, want)
	}
	// The LEC variant must do no more join attempts than the basic one.
	if lecStats.JoinAttempts > basicStats.JoinAttempts {
		t.Errorf("LEC join attempts %d > basic %d", lecStats.JoinAttempts, basicStats.JoinAttempts)
	}
}

// TestAssemblyAfterPruning: pruning PM2_3 first must not change the
// results (Theorem 4 safety).
func TestAssemblyAfterPruning(t *testing.T) {
	ex, pms := paperPMs(t)
	features, featureOf := lec.Compute(pms)
	res := lec.Prune(features, ex.Query)
	var kept []*partial.Match
	for i, pm := range pms {
		if res.Retained[featureOf[i]] {
			kept = append(kept, pm)
		}
	}
	if len(kept) != 7 {
		t.Fatalf("pruning kept %d of 8 partial matches, want 7", len(kept))
	}
	all, _ := LEC(pms, ex.Query)
	pruned, _ := LEC(kept, ex.Query)
	if fmt.Sprint(resultVecs(ex, all)) != fmt.Sprint(resultVecs(ex, pruned)) {
		t.Error("pruning changed assembly results")
	}
}

func TestAssemblyEmpty(t *testing.T) {
	ex := paperexample.New()
	rs, stats := LEC(nil, ex.Query)
	if len(rs) != 0 || stats.States != 0 {
		t.Errorf("unexpected output on empty input")
	}
}

func TestGroupBySign(t *testing.T) {
	_, pms := paperPMs(t)
	groups := GroupBySign(pms)
	// Fig. 3 signs: 00101 ×2, 01010 ×2, 11010 ×3, 10000 ×1 → 4 groups
	// (maximal grouping; Example 8 shows the same four groups after
	// pruning).
	if len(groups) != 4 {
		t.Fatalf("got %d sign groups, want 4", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g)]++
	}
	if sizes[3] != 1 || sizes[2] != 2 || sizes[1] != 1 {
		t.Errorf("group sizes = %v", sizes)
	}
}

// TestDistributedEqualsCentralized: on random graphs, partitionings and a
// fixed query, local complete matches + assembled crossing matches must
// equal the centralized answer set.
func TestDistributedEqualsCentralized(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		nv := 4 + r.Intn(10)
		ne := 8 + r.Intn(28)
		for i := 0; i < ne; i++ {
			g.AddIRIs(fmt.Sprintf("v%d", r.Intn(nv)), fmt.Sprintf("p%d", r.Intn(2)), fmt.Sprintf("v%d", r.Intn(nv)))
		}
		st := store.FromGraph(g)
		q := query.NewBuilder(g.Dict).
			Triple(query.Var("x"), query.IRI("p0"), query.Var("y")).
			Triple(query.Var("y"), query.IRI("p1"), query.Var("z")).
			MustBuild()

		// Centralized answers.
		want := map[string]bool{}
		for _, b := range st.Match(q) {
			want[fmt.Sprint(b.Vertices)] = true
		}

		k := 2 + r.Intn(3)
		a := &partition.Assignment{K: k, Frag: map[rdf.TermID]int{}}
		for _, v := range st.Vertices() {
			a.Frag[v] = r.Intn(k)
		}
		d, err := fragment.Build(st, a)
		if err != nil {
			return false
		}
		got := map[string]bool{}
		var pms []*partial.Match
		for _, f := range d.Fragments {
			// Local complete matches: all vertices internal.
			f := f
			f.Store.MatchFunc(q, store.MatchOptions{
				VertexFilter: func(qv int, u rdf.TermID) bool { return f.IsInternal(u) },
			}, func(b store.Binding) bool {
				got[fmt.Sprint(b.Vertices)] = true
				return true
			})
			ms, err := partial.Compute(f, q, partial.Options{})
			if err != nil {
				return false
			}
			pms = append(pms, ms...)
		}
		for _, variant := range []func([]*partial.Match, *query.Graph) ([]Result, Stats){LEC, Basic} {
			results, _ := variant(pms, q)
			merged := map[string]bool{}
			for k := range got {
				merged[k] = true
			}
			for _, res := range results {
				merged[fmt.Sprint(res.Vec)] = true
			}
			if len(merged) != len(want) {
				return false
			}
			for k := range want {
				if !merged[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPruningNeverLosesResults: with LEC pruning applied first, the final
// answer set is unchanged (property form of Theorem 4).
func TestPruningNeverLosesResultsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		nv := 4 + r.Intn(8)
		ne := 8 + r.Intn(20)
		for i := 0; i < ne; i++ {
			g.AddIRIs(fmt.Sprintf("v%d", r.Intn(nv)), fmt.Sprintf("p%d", r.Intn(2)), fmt.Sprintf("v%d", r.Intn(nv)))
		}
		st := store.FromGraph(g)
		q := query.NewBuilder(g.Dict).
			Triple(query.Var("x"), query.IRI("p0"), query.Var("y")).
			Triple(query.Var("y"), query.IRI("p1"), query.Var("z")).
			Triple(query.Var("x"), query.IRI("p1"), query.Var("w")).
			MustBuild()
		k := 2 + r.Intn(2)
		a := &partition.Assignment{K: k, Frag: map[rdf.TermID]int{}}
		for _, v := range st.Vertices() {
			a.Frag[v] = r.Intn(k)
		}
		d, err := fragment.Build(st, a)
		if err != nil {
			return false
		}
		var pms []*partial.Match
		for _, f := range d.Fragments {
			ms, err := partial.Compute(f, q, partial.Options{})
			if err != nil {
				return false
			}
			pms = append(pms, ms...)
		}
		features, featureOf := lec.Compute(pms)
		res := lec.Prune(features, q)
		var kept []*partial.Match
		for i, pm := range pms {
			if res.Retained[featureOf[i]] {
				kept = append(kept, pm)
			}
		}
		full, _ := LEC(pms, q)
		pruned, _ := LEC(kept, q)
		if len(full) != len(pruned) {
			return false
		}
		fullKeys := map[string]bool{}
		for _, r := range full {
			fullKeys[r.Key()] = true
		}
		for _, r := range pruned {
			if !fullKeys[r.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
