// Package assembly joins local partial matches into complete crossing
// matches (Section V). Two algorithms are provided with identical
// semantics:
//
//   - LEC: Algorithm 3 — partial matches are grouped by LECSign
//     (Definition 11), candidate join partners are found through a
//     crossing-edge index, and combinations grow canonically from their
//     minimum-index member so each connected combination is visited once.
//   - Basic: the partitioning-based join of Peng et al. [18] that the
//     paper's gStoreD-Basic ablation uses — same closure, but partners are
//     discovered by scanning all partial matches and testing full
//     joinability pairwise, with no sign grouping and no edge index.
//
// Joins always re-check serialization-vector compatibility, as required by
// the join conditions of [18] (see DESIGN.md fidelity note 1).
package assembly

import (
	"fmt"
	"sort"
	"strings"

	"gstored/internal/partial"
	"gstored/internal/query"
	"gstored/internal/rdf"
)

// Result is one complete crossing match: a fully bound vector plus edge
// variable bindings.
type Result struct {
	Vec      []rdf.TermID
	EdgeVars []rdf.TermID
}

// Key canonically identifies the result row.
func (r Result) Key() string {
	var b strings.Builder
	for _, v := range r.Vec {
		fmt.Fprintf(&b, "%d,", v)
	}
	b.WriteByte('|')
	for _, v := range r.EdgeVars {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// Stats reports work performed by an assembly run.
type Stats struct {
	JoinAttempts int // pairwise compatibility tests
	States       int // intermediate join states materialized
	Results      int // complete matches (after dedup)
}

// Options tunes Assemble.
type Options struct {
	// UseLEC selects the LEC-feature-based Algorithm 3 over the baseline
	// join of [18].
	UseLEC bool
	// Cancel, when non-nil, is polled periodically; returning true
	// abandons the assembly, returning nil results (the partial stats
	// still reflect the work done before cancellation).
	Cancel func() bool
	// Emit, when non-nil, receives each complete crossing match as it is
	// discovered (deduplicated, in discovery order) instead of the match
	// being accumulated; Assemble then returns nil results and callers
	// own whatever Emit built. Returning false stops the assembly early.
	// Stats.Results still counts the emitted matches.
	Emit func(Result) bool
}

// LEC assembles pms with the LEC-feature-based Algorithm 3.
func LEC(pms []*partial.Match, q *query.Graph) ([]Result, Stats) {
	return Assemble(pms, q, Options{UseLEC: true})
}

// Basic assembles pms with the baseline join of [18].
func Basic(pms []*partial.Match, q *query.Graph) ([]Result, Stats) {
	return Assemble(pms, q, Options{})
}

// joinState is a partially assembled crossing match.
type joinState struct {
	vec     []rdf.TermID
	evb     []rdf.TermID
	sign    uint64
	matched uint64
	members []int
	// qmap records, per query edge, the crossing edge covering it
	// (S == NoTerm when none yet); used by the indexed expansion.
	qmap []partial.CrossEdge
}

// Assemble joins the partial matches into complete crossing matches.
func Assemble(pms []*partial.Match, q *query.Graph, opts Options) ([]Result, Stats) {
	useLEC := opts.UseLEC
	var stats Stats
	if len(pms) == 0 {
		return nil, stats
	}
	full := fullSign(len(q.Vertices))

	// Crossing-edge index for the LEC variant's connected expansion.
	var byMapping map[partial.CrossEdge][]int
	if useLEC {
		byMapping = make(map[partial.CrossEdge][]int)
		for i, pm := range pms {
			for _, c := range pm.Crossing {
				byMapping[c] = append(byMapping[c], i)
			}
		}
	}

	var steps uint
	// Complete matches are deduplicated by row key: distinct member sets
	// can assemble into identical rows. With Emit set only the key set is
	// retained; otherwise the results themselves accumulate.
	var results map[string]Result
	var emitted map[string]bool
	if opts.Emit != nil {
		emitted = make(map[string]bool)
	} else {
		results = make(map[string]Result)
	}
	for root := 0; root < len(pms); root++ {
		init := stateFrom(pms[root], root, q)
		frontier := []*joinState{init}
		seen := map[string]bool{memberKey(init.members): true}
		for len(frontier) > 0 {
			if opts.Cancel != nil {
				if steps&0xff == 0 && opts.Cancel() {
					return nil, stats
				}
				steps++
			}
			s := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, cand := range candidates(s, pms, byMapping, root, useLEC, &stats) {
				ns, ok := s.extend(pms[cand], cand, q)
				stats.JoinAttempts++
				if !ok {
					continue
				}
				key := memberKey(ns.members)
				if seen[key] {
					continue
				}
				seen[key] = true
				stats.States++
				if ns.sign == full {
					// Theorem 4: full sign cover implies all edges matched.
					r := Result{Vec: ns.vec, EdgeVars: ns.evb}
					rk := r.Key()
					if opts.Emit != nil {
						if !emitted[rk] {
							emitted[rk] = true
							stats.Results++
							if !opts.Emit(r) {
								return nil, stats
							}
						}
					} else {
						results[rk] = r
					}
					continue
				}
				frontier = append(frontier, ns)
			}
		}
	}
	if opts.Emit != nil {
		return nil, stats
	}
	out := make([]Result, 0, len(results))
	for _, r := range results {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	stats.Results = len(out)
	return out, stats
}

func stateFrom(pm *partial.Match, idx int, q *query.Graph) *joinState {
	s := &joinState{
		vec:     append([]rdf.TermID(nil), pm.Vec...),
		evb:     append([]rdf.TermID(nil), pm.EdgeVars...),
		sign:    pm.Sign,
		matched: pm.MatchedEdges,
		members: []int{idx},
		qmap:    make([]partial.CrossEdge, len(q.Edges)),
	}
	for _, c := range pm.Crossing {
		s.qmap[c.QEdge] = c
	}
	return s
}

// candidates proposes partial matches to join into s. The LEC variant
// looks up only PMs sharing a crossing-edge mapping; the basic variant
// proposes everything with a larger index.
func candidates(s *joinState, pms []*partial.Match, byMapping map[partial.CrossEdge][]int, root int, useLEC bool, stats *Stats) []int {
	in := make(map[int]bool, len(s.members))
	for _, m := range s.members {
		in[m] = true
	}
	var out []int
	if useLEC {
		seen := map[int]bool{}
		for qe := range s.qmap {
			if s.qmap[qe].S == rdf.NoTerm {
				continue
			}
			for _, i := range byMapping[s.qmap[qe]] {
				if i <= root || in[i] || seen[i] {
					continue
				}
				seen[i] = true
				out = append(out, i)
			}
		}
		sort.Ints(out)
		return out
	}
	// Basic: scan everything; sharing is re-discovered inside extend (the
	// connectivity requirement still applies), burning the join attempts
	// the LEC index avoids.
	for i := root + 1; i < len(pms); i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// extend joins pm into s. The join conditions of [18] apply: the two sides
// must share at least one crossing edge mapped to the same query edge, no
// query edge may be covered by two different crossing edges, the LECSigns
// must be disjoint, and the serialization vectors (and edge-variable
// bindings) must agree wherever both are non-NULL.
func (s *joinState) extend(pm *partial.Match, idx int, q *query.Graph) (*joinState, bool) {
	if s.sign&pm.Sign != 0 {
		return nil, false
	}
	shared := false
	for _, c := range pm.Crossing {
		cur := s.qmap[c.QEdge]
		if cur.S == rdf.NoTerm {
			continue
		}
		if cur == c {
			shared = true
		} else {
			return nil, false // same query edge, different crossing edge
		}
	}
	if !shared {
		return nil, false
	}
	// Vector compatibility.
	for i, v := range pm.Vec {
		if v != rdf.NoTerm && s.vec[i] != rdf.NoTerm && s.vec[i] != v {
			return nil, false
		}
	}
	for i, v := range pm.EdgeVars {
		if v != rdf.NoTerm && s.evb[i] != rdf.NoTerm && s.evb[i] != v {
			return nil, false
		}
	}
	ns := &joinState{
		vec:     append([]rdf.TermID(nil), s.vec...),
		evb:     append([]rdf.TermID(nil), s.evb...),
		sign:    s.sign | pm.Sign,
		matched: s.matched | pm.MatchedEdges,
		members: append(append([]int(nil), s.members...), idx),
		qmap:    append([]partial.CrossEdge(nil), s.qmap...),
	}
	sort.Ints(ns.members)
	for i, v := range pm.Vec {
		if v != rdf.NoTerm {
			ns.vec[i] = v
		}
	}
	for i, v := range pm.EdgeVars {
		if v != rdf.NoTerm {
			ns.evb[i] = v
		}
	}
	for _, c := range pm.Crossing {
		ns.qmap[c.QEdge] = c
	}
	return ns, true
}

func memberKey(members []int) string {
	var b strings.Builder
	for _, m := range members {
		fmt.Fprintf(&b, "%d,", m)
	}
	return b.String()
}

func fullSign(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// GroupBySign builds the LEC-feature-based local partial match groups of
// Definition 11 (used for reporting and by tests; the assembly itself
// enforces sign disjointness per join, which subsumes Theorem 5's
// same-group-never-joins rule).
func GroupBySign(pms []*partial.Match) map[uint64][]int {
	groups := make(map[uint64][]int)
	for i, pm := range pms {
		groups[pm.Sign] = append(groups[pm.Sign], i)
	}
	return groups
}
