// Package querylog captures the serving layer's executed-query stream
// as the workload input to the Section VII partition advisor: a
// bounded, concurrency-safe log keyed on canonical query keys that
// records per-query frequency, per-predicate touch counts, and the
// partial-match crossing statistics the engine surfaces in Result.Stats.
//
// The log is an LRU over distinct canonical queries: aggregate
// counters (predicate touches, crossing stats) always reflect exactly
// the resident entries, so evicting a query that fell out of the
// workload also forgets its weight — the advisor sees a sliding window
// of the live traffic, not all of history. Records can be appended to a
// JSONL file as they are observed and replayed offline by
// `gstored advise`.
package querylog

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"gstored/internal/engine"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
)

// DefaultCapacity bounds distinct tracked queries when New is given a
// non-positive capacity.
const DefaultCapacity = 4096

// Log is a bounded, concurrency-safe record of the executed query
// workload. All methods are safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*entry
	ll       *list.List // front = most recently observed

	total   uint64 // queries observed, evicted ones included
	evicted uint64 // distinct entries dropped by the LRU bound

	// Live aggregates over resident entries only; eviction subtracts the
	// entry's contribution so the advisor weighs the current window.
	predTouch       map[rdf.TermID]uint64
	partialMatches  uint64
	crossingMatches uint64
	shipment        int64
}

// entry aggregates one distinct canonical query.
type entry struct {
	key  string
	text string // representative SPARQL text (first observed variant)

	count uint64
	// preds is the per-execution predicate multiset of the query's
	// constant-labeled triple patterns.
	preds map[rdf.TermID]uint64

	partialMatches  uint64
	crossingMatches uint64
	shipment        int64

	el *list.Element
}

// New returns a log tracking at most capacity distinct queries
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{
		capacity:  capacity,
		entries:   make(map[string]*entry, capacity),
		ll:        list.New(),
		predTouch: make(map[rdf.TermID]uint64),
	}
}

// queryPreds extracts the constant predicate multiset of q, skipping
// variable labels and read-only-parse placeholders (a placeholder ID is
// parse-local and names no real predicate, so it cannot weight data
// edges).
func queryPreds(q *query.Graph) map[rdf.TermID]uint64 {
	preds := make(map[rdf.TermID]uint64, len(q.Edges))
	for _, e := range q.Edges {
		if e.HasVarLabel() {
			continue
		}
		if _, placeholder := q.Placeholders[e.Label]; placeholder {
			continue
		}
		preds[e.Label]++
	}
	return preds
}

// Observe folds one executed query into the log: key is its canonical
// cache key (frequency accumulates across textual variants), text a
// representative SPARQL form, q the compiled graph (source of the
// predicate touch counts), and stats the execution's Result.Stats —
// cached servings may pass the stats of the run that populated the
// entry, which keeps crossing weights proportional to traffic.
func (l *Log) Observe(key, text string, q *query.Graph, stats engine.Stats) {
	l.ObserveN(key, text, q, stats, 1)
}

// ObserveN is Observe at multiplicity n in one pass — the replay path
// uses it so a saved record's count folds in without n map updates
// (a corrupt count must not stall the replay). stats is per execution:
// its contribution is multiplied by n. n == 0 is a no-op.
func (l *Log) ObserveN(key, text string, q *query.Graph, stats engine.Stats, n uint64) {
	if n == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[key]
	if !ok {
		if l.ll.Len() >= l.capacity {
			l.evictOldestLocked()
		}
		// The predicate multiset is per canonical query, so it only needs
		// computing when the entry is first seen — the serve path's
		// steady state (key resident) skips it entirely.
		e = &entry{key: key, text: text, preds: queryPreds(q)}
		e.el = l.ll.PushFront(e)
		l.entries[key] = e
	} else {
		l.ll.MoveToFront(e.el)
	}
	l.total += n
	e.count += n
	e.partialMatches += n * uint64(stats.NumPartialMatches)
	e.crossingMatches += n * uint64(stats.NumCrossingMatches)
	e.shipment += int64(n) * stats.TotalShipment
	for p, m := range e.preds {
		l.predTouch[p] += n * m
	}
	l.partialMatches += n * uint64(stats.NumPartialMatches)
	l.crossingMatches += n * uint64(stats.NumCrossingMatches)
	l.shipment += int64(n) * stats.TotalShipment
}

// AdvanceEpoch ages the crossing-match statistics by steps cluster
// generations: partial-match counts, crossing-match counts and shipment
// bytes halve per epoch advanced, per entry and in the aggregates. Those
// statistics were measured against fragments that no longer exist — a
// repartition moves the cut edges, an update changes them — so their
// advisor weight decays instead of pinning the old layout's verdict
// forever. Query frequency and predicate touch counts are properties of
// the workload, not of the partitioning, and are left untouched.
func (l *Log) AdvanceEpoch(steps uint64) {
	if steps == 0 {
		return
	}
	shift := uint(steps)
	if shift > 63 {
		shift = 63 // uint64 >> 64 is undefined-ish in spirit; 63 already zeroes every real count
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.partialMatches, l.crossingMatches, l.shipment = 0, 0, 0
	for el := l.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		e.partialMatches >>= shift
		e.crossingMatches >>= shift
		e.shipment >>= shift
		// Aggregates are recomputed from the decayed entries so they stay
		// exactly the resident sum (independent halving would drift by the
		// rounding of each term).
		l.partialMatches += e.partialMatches
		l.crossingMatches += e.crossingMatches
		l.shipment += e.shipment
	}
}

// evictOldestLocked drops the least recently observed entry and
// subtracts its aggregate contribution.
func (l *Log) evictOldestLocked() {
	back := l.ll.Back()
	if back == nil {
		return
	}
	e := back.Value.(*entry)
	l.ll.Remove(back)
	delete(l.entries, e.key)
	l.evicted++
	for p, n := range e.preds {
		if rem := e.count * n; l.predTouch[p] <= rem {
			delete(l.predTouch, p)
		} else {
			l.predTouch[p] -= rem
		}
	}
	l.partialMatches -= min64(l.partialMatches, e.partialMatches)
	l.crossingMatches -= min64(l.crossingMatches, e.crossingMatches)
	if e.shipment < l.shipment {
		l.shipment -= e.shipment
	} else {
		l.shipment = 0
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Len reports the number of distinct queries currently tracked.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// Total reports the number of queries observed, including those whose
// entries the LRU bound has since evicted.
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entry is one distinct query in a Snapshot.
type Entry struct {
	Key   string `json:"key"`
	Text  string `json:"query"`
	Count uint64 `json:"count"`
	// PartialMatches and CrossingMatches accumulate the Result.Stats
	// crossing statistics over the entry's executions.
	PartialMatches  uint64 `json:"partial_matches"`
	CrossingMatches uint64 `json:"crossing_matches"`
	// ShipmentBytes accumulates simulated inter-site shipment.
	ShipmentBytes int64 `json:"shipment_bytes"`
}

// Snapshot is a point-in-time copy of the log, safe to read without
// further synchronization.
type Snapshot struct {
	// Queries counts all observations; Evicted counts distinct entries
	// dropped by the LRU bound (their weight is gone from the window).
	Queries  uint64 `json:"queries"`
	Distinct int    `json:"distinct"`
	Evicted  uint64 `json:"evicted"`

	// PredTouch is the live per-predicate touch count over resident
	// entries: query frequency × per-query pattern multiplicity.
	PredTouch map[rdf.TermID]uint64 `json:"-"`

	// Entries lists resident queries, most frequent first.
	Entries []Entry `json:"entries"`

	PartialMatches  uint64 `json:"partial_matches"`
	CrossingMatches uint64 `json:"crossing_matches"`
	ShipmentBytes   int64  `json:"shipment_bytes"`
}

// Snapshot copies the log's current state.
func (l *Log) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Snapshot{
		Queries:         l.total,
		Distinct:        l.ll.Len(),
		Evicted:         l.evicted,
		PredTouch:       make(map[rdf.TermID]uint64, len(l.predTouch)),
		Entries:         make([]Entry, 0, l.ll.Len()),
		PartialMatches:  l.partialMatches,
		CrossingMatches: l.crossingMatches,
		ShipmentBytes:   l.shipment,
	}
	for p, n := range l.predTouch {
		s.PredTouch[p] = n
	}
	for el := l.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		s.Entries = append(s.Entries, Entry{
			Key:             e.key,
			Text:            e.text,
			Count:           e.count,
			PartialMatches:  e.partialMatches,
			CrossingMatches: e.crossingMatches,
			ShipmentBytes:   e.shipment,
		})
	}
	sort.SliceStable(s.Entries, func(i, j int) bool { return s.Entries[i].Count > s.Entries[j].Count })
	return s
}

// Workload converts the snapshot into the partition advisor's input:
// per-predicate touch counts become crossing-edge weights for
// partition.CostWorkload. Smoothing is passed through (0 selects
// partition.DefaultSmoothing).
func (s Snapshot) Workload(smoothing float64) partition.Workload {
	touch := make(map[rdf.TermID]float64, len(s.PredTouch))
	for p, n := range s.PredTouch {
		touch[p] = float64(n)
	}
	return partition.Workload{PredTouch: touch, Smoothing: smoothing}
}

// ---------------------------------------------------------------------------
// Offline persistence: one JSON record per executed query, appendable
// under a lock while serving and replayable by `gstored advise`.

// Record is one saved query observation.
type Record struct {
	// Query is the SPARQL text as received.
	Query string `json:"query"`
	// Count is the observation multiplicity (0 and 1 both mean once).
	Count uint64 `json:"count,omitempty"`
}

// Writer appends records to an io.Writer as JSON lines. It is safe for
// concurrent use; create with NewWriter.
type Writer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriter wraps w for concurrent JSONL appends.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Append writes one record as a JSON line.
func (lw *Writer) Append(r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("querylog: encoding record: %w", err)
	}
	b = append(b, '\n')
	lw.mu.Lock()
	defer lw.mu.Unlock()
	_, err = lw.w.Write(b)
	return err
}

// ReadRecords parses a JSONL query log (blank lines and '#' comment
// lines are skipped).
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		trimmed := 0
		for trimmed < len(text) && (text[trimmed] == ' ' || text[trimmed] == '\t') {
			trimmed++
		}
		if trimmed == len(text) || text[trimmed] == '#' {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("querylog: line %d: %w", line, err)
		}
		if rec.Query == "" {
			return nil, fmt.Errorf("querylog: line %d: empty query", line)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("querylog: reading log: %w", err)
	}
	return out, nil
}
