package querylog

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gstored/internal/engine"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/sparql"
)

// testDict builds a graph carrying the predicates the test queries
// mention, so parsed graphs use real (non-placeholder) predicate IDs.
func testDict(t *testing.T) *rdf.Graph {
	t.Helper()
	g := rdf.NewGraph()
	g.AddIRIs("http://ex/a", "http://ex/knows", "http://ex/b")
	g.AddIRIs("http://ex/b", "http://ex/likes", "http://ex/c")
	g.AddIRIs("http://ex/c", "http://ex/name", "http://ex/d")
	return g
}

func parse(t *testing.T, g *rdf.Graph, src string) *query.Graph {
	t.Helper()
	q, err := sparql.Parse(src, g.Dict)
	if err != nil {
		t.Fatalf("parsing %q: %v", src, err)
	}
	return q
}

func predID(t *testing.T, g *rdf.Graph, iri string) rdf.TermID {
	t.Helper()
	id, ok := g.Dict.Lookup(rdf.NewIRI(iri))
	if !ok {
		t.Fatalf("predicate %s not in dictionary", iri)
	}
	return id
}

func TestObserveAggregates(t *testing.T) {
	g := testDict(t)
	l := New(8)
	// Two knows patterns + one likes pattern per execution.
	q := parse(t, g, `SELECT ?x WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/knows> ?z . ?z <http://ex/likes> ?w }`)
	stats := engine.Stats{NumPartialMatches: 5, NumCrossingMatches: 2, TotalShipment: 100}
	l.Observe("k1", "q1", q, stats)
	l.Observe("k1", "q1", q, stats)

	s := l.Snapshot()
	if s.Queries != 2 || s.Distinct != 1 || s.Evicted != 0 {
		t.Fatalf("queries=%d distinct=%d evicted=%d, want 2/1/0", s.Queries, s.Distinct, s.Evicted)
	}
	if s.PartialMatches != 10 || s.CrossingMatches != 4 || s.ShipmentBytes != 200 {
		t.Errorf("aggregates pm=%d cm=%d ship=%d, want 10/4/200", s.PartialMatches, s.CrossingMatches, s.ShipmentBytes)
	}
	knows := predID(t, g, "http://ex/knows")
	likes := predID(t, g, "http://ex/likes")
	// knows appears twice per execution × 2 executions; likes once × 2.
	if s.PredTouch[knows] != 4 {
		t.Errorf("knows touch = %d, want 4", s.PredTouch[knows])
	}
	if s.PredTouch[likes] != 2 {
		t.Errorf("likes touch = %d, want 2", s.PredTouch[likes])
	}
	if len(s.Entries) != 1 || s.Entries[0].Count != 2 || s.Entries[0].PartialMatches != 10 {
		t.Errorf("entries = %+v", s.Entries)
	}
}

func TestVariablePredicatesAndPlaceholdersIgnored(t *testing.T) {
	g := testDict(t)
	l := New(8)
	// ?p is a variable label; <http://ex/unseen> parses read-only to a
	// placeholder ID. Neither may contribute predicate weight.
	q, err := sparql.ParseReadOnly(`SELECT ?x WHERE { ?x ?p ?y . ?x <http://ex/unseen> ?y . ?x <http://ex/knows> ?y }`, g.Dict)
	if err != nil {
		t.Fatal(err)
	}
	l.Observe("k", "q", q, engine.Stats{})
	s := l.Snapshot()
	knows := predID(t, g, "http://ex/knows")
	if len(s.PredTouch) != 1 || s.PredTouch[knows] != 1 {
		t.Errorf("PredTouch = %v, want only knows=1", s.PredTouch)
	}
}

// TestObserveNFoldsMultiplicity: a replayed record's count folds in as
// one pass, so even an absurd count (a corrupt log) costs O(1) — this
// returns instantly or the test times out.
func TestObserveNFoldsMultiplicity(t *testing.T) {
	g := testDict(t)
	q := parse(t, g, `SELECT ?x WHERE { ?x <http://ex/knows> ?y }`)
	l := New(8)
	const huge = uint64(1) << 40
	l.ObserveN("k", "q", q, engine.Stats{NumPartialMatches: 2}, huge)
	l.ObserveN("k", "q", q, engine.Stats{}, 0) // no-op
	s := l.Snapshot()
	if s.Queries != huge || s.PartialMatches != 2*huge {
		t.Errorf("queries=%d pm=%d, want %d/%d", s.Queries, s.PartialMatches, huge, 2*huge)
	}
	knows := predID(t, g, "http://ex/knows")
	if s.PredTouch[knows] != huge {
		t.Errorf("touch = %d, want %d", s.PredTouch[knows], huge)
	}
}

func TestEvictionSubtractsWeight(t *testing.T) {
	g := testDict(t)
	knows := parse(t, g, `SELECT ?x WHERE { ?x <http://ex/knows> ?y }`)
	likes := parse(t, g, `SELECT ?x WHERE { ?x <http://ex/likes> ?y }`)
	name := parse(t, g, `SELECT ?x WHERE { ?x <http://ex/name> ?y }`)

	l := New(2)
	st := engine.Stats{NumPartialMatches: 3, NumCrossingMatches: 1, TotalShipment: 10}
	for i := 0; i < 5; i++ {
		l.Observe("knows", "kq", knows, st)
	}
	l.Observe("likes", "lq", likes, st)
	// After observing likes, knows is least recently observed; name
	// evicts it despite its 5-to-1 frequency edge — recency, not
	// frequency, bounds the window.
	l.Observe("name", "nq", name, st)

	s := l.Snapshot()
	if s.Distinct != 2 || s.Evicted != 1 {
		t.Fatalf("distinct=%d evicted=%d, want 2/1", s.Distinct, s.Evicted)
	}
	if s.Queries != 7 {
		t.Errorf("total queries = %d, want 7 (evictions don't erase history)", s.Queries)
	}
	knowsID := predID(t, g, "http://ex/knows")
	if _, ok := s.PredTouch[knowsID]; ok {
		t.Errorf("evicted entry's predicate weight survived: %v", s.PredTouch)
	}
	// The evicted entry's 5 executions × 3 partial matches are gone.
	if s.PartialMatches != 6 {
		t.Errorf("partial matches = %d, want 6 (two resident entries × 3)", s.PartialMatches)
	}
	for _, e := range s.Entries {
		if e.Key == "knows" {
			t.Error("evicted entry still listed in snapshot")
		}
	}
}

func TestSnapshotOrdersByFrequency(t *testing.T) {
	g := testDict(t)
	q := parse(t, g, `SELECT ?x WHERE { ?x <http://ex/knows> ?y }`)
	l := New(8)
	for i := 0; i < 3; i++ {
		l.Observe("hot", "hot", q, engine.Stats{})
	}
	l.Observe("cold", "cold", q, engine.Stats{})
	s := l.Snapshot()
	if len(s.Entries) != 2 || s.Entries[0].Key != "hot" || s.Entries[0].Count != 3 {
		t.Errorf("entries not ordered by frequency: %+v", s.Entries)
	}
}

func TestSnapshotWorkload(t *testing.T) {
	g := testDict(t)
	q := parse(t, g, `SELECT ?x WHERE { ?x <http://ex/knows> ?y }`)
	l := New(8)
	l.Observe("k", "q", q, engine.Stats{})
	w := l.Snapshot().Workload(0)
	if w.Empty() {
		t.Fatal("workload from a non-empty log should not be empty")
	}
	knows := predID(t, g, "http://ex/knows")
	if got := w.Weight(knows); got != 1 {
		t.Errorf("sole observed predicate weight = %v, want 1 (normalized mean)", got)
	}
}

func TestDefaultCapacity(t *testing.T) {
	if got := New(0).capacity; got != DefaultCapacity {
		t.Errorf("capacity = %d, want %d", got, DefaultCapacity)
	}
	if got := New(-3).capacity; got != DefaultCapacity {
		t.Errorf("capacity = %d, want %d", got, DefaultCapacity)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(Record{Query: "SELECT ?x WHERE { ?x <p> ?y }"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Query: "SELECT ?y WHERE { ?y <q> ?z }", Count: 7}); err != nil {
		t.Fatal(err)
	}
	// Comments and blank lines are tolerated on read.
	input := "# saved by gstored serve\n\n" + buf.String() + "  \t\n"
	recs, err := ReadRecords(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Count != 0 || recs[1].Count != 7 {
		t.Fatalf("records = %+v", recs)
	}
	if recs[1].Query != "SELECT ?y WHERE { ?y <q> ?z }" {
		t.Errorf("query round-trip mangled: %q", recs[1].Query)
	}
}

func TestReadRecordsRejectsMalformed(t *testing.T) {
	if _, err := ReadRecords(strings.NewReader(`{"query":`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadRecords(strings.NewReader(`{"count":2}`)); err == nil {
		t.Error("record without query accepted")
	}
}

// TestConcurrentObserve exercises the log under parallel writers and
// snapshot readers; go test -race is the real assertion.
func TestConcurrentObserve(t *testing.T) {
	g := testDict(t)
	q := parse(t, g, `SELECT ?x WHERE { ?x <http://ex/knows> ?y }`)
	l := New(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Observe(fmt.Sprintf("k%d", (i+j)%24), "q", q, engine.Stats{NumPartialMatches: 1})
				if j%10 == 0 {
					l.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	s := l.Snapshot()
	if s.Queries != 800 {
		t.Errorf("total = %d, want 800", s.Queries)
	}
	if s.Distinct > 16 {
		t.Errorf("distinct = %d exceeds capacity 16", s.Distinct)
	}
}

func TestAdvanceEpochDecaysCrossingStats(t *testing.T) {
	g := testDict(t)
	l := New(8)
	q := parse(t, g, `SELECT ?x WHERE { ?x <http://ex/knows> ?y }`)
	l.Observe("k1", "q1", q, engine.Stats{NumPartialMatches: 8, NumCrossingMatches: 4, TotalShipment: 1600})
	l.Observe("k2", "q2", q, engine.Stats{NumPartialMatches: 2, NumCrossingMatches: 3, TotalShipment: 100})

	// One epoch: everything halves (integer division per entry).
	l.AdvanceEpoch(1)
	s := l.Snapshot()
	if s.PartialMatches != 4+1 || s.CrossingMatches != 2+1 || s.ShipmentBytes != 800+50 {
		t.Fatalf("after 1 epoch: pm=%d cm=%d ship=%d, want 5/3/850", s.PartialMatches, s.CrossingMatches, s.ShipmentBytes)
	}
	var e1 Entry
	for _, e := range s.Entries {
		if e.Key == "k1" {
			e1 = e
		}
	}
	if e1.PartialMatches != 4 || e1.CrossingMatches != 2 {
		t.Errorf("entry decay: %+v", e1)
	}
	// Frequency and predicate weight are workload facts, not layout
	// facts: they must survive undecayed.
	if s.Queries != 2 || e1.Count != 1 {
		t.Errorf("frequency decayed: queries=%d count=%d", s.Queries, e1.Count)
	}
	knows := predID(t, g, "http://ex/knows")
	if s.PredTouch[knows] != 2 {
		t.Errorf("pred touch decayed: %d, want 2", s.PredTouch[knows])
	}

	// A large epoch jump zeroes the stats without shifting past the
	// word size.
	l.AdvanceEpoch(100)
	s = l.Snapshot()
	if s.PartialMatches != 0 || s.CrossingMatches != 0 || s.ShipmentBytes != 0 {
		t.Errorf("after 100 epochs: pm=%d cm=%d ship=%d, want zeros", s.PartialMatches, s.CrossingMatches, s.ShipmentBytes)
	}
	if s.Queries != 2 {
		t.Errorf("frequency lost: %d", s.Queries)
	}

	// Zero steps is a no-op and new observations accumulate again.
	l.AdvanceEpoch(0)
	l.Observe("k1", "q1", q, engine.Stats{NumCrossingMatches: 7})
	if s := l.Snapshot(); s.CrossingMatches != 7 {
		t.Errorf("post-decay observation = %d, want 7", s.CrossingMatches)
	}
}
