package gstored

import (
	"context"
	"fmt"
	"sort"
	"testing"
)

// dupDB builds a database whose {?x knows ?y} projection onto ?y carries
// known duplicates: {b×2, c×3}.
func dupDB(t *testing.T) *DB {
	t.Helper()
	g := NewGraph()
	for s, o := range map[string]string{"a1": "b", "a2": "b", "a3": "c", "a4": "c", "a5": "c"} {
		g.AddIRIs("http://ex/"+s, "http://ex/knows", "http://ex/"+o)
	}
	db, err := Open(g, Config{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestQueryDistinctEndToEnd is the headline regression through the full
// SPARQL text path: SELECT DISTINCT must return a set. Before this fix
// the parsed flag was discarded and the server returned duplicates for a
// query it claimed to understand.
func TestQueryDistinctEndToEnd(t *testing.T) {
	db := dupDB(t)
	plain, err := db.Query(`SELECT ?y WHERE { ?x <http://ex/knows> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 5 {
		t.Fatalf("plain query: %d rows, want the 5-row multiset", plain.Len())
	}
	res, err := db.Query(`SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	rows := db.Rows(res)
	if len(rows) != 2 {
		t.Fatalf("SELECT DISTINCT: %d rows, want 2", len(rows))
	}
	got := []string{rows[0][0], rows[1][0]}
	sort.Strings(got)
	want := []string{"<http://ex/b>", "<http://ex/c>"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("distinct values = %v, want %v", got, want)
	}
}

// TestQueryLimitOffsetEndToEnd pins LIMIT/OFFSET through the text path —
// both used to die with "unexpected trailing input".
func TestQueryLimitOffsetEndToEnd(t *testing.T) {
	db := dupDB(t)
	for _, c := range []struct {
		src  string
		want int
	}{
		{`SELECT ?y WHERE { ?x <http://ex/knows> ?y } LIMIT 3`, 3},
		{`SELECT ?y WHERE { ?x <http://ex/knows> ?y } LIMIT 0`, 0},
		{`SELECT ?y WHERE { ?x <http://ex/knows> ?y } OFFSET 4`, 1},
		{`SELECT ?y WHERE { ?x <http://ex/knows> ?y } LIMIT 2 OFFSET 4`, 1},
		{`SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y } LIMIT 1`, 1},
		{`SELECT ?y WHERE { ?x <http://ex/knows> ?y } OFFSET 100`, 0},
	} {
		res, err := db.Query(c.src)
		if err != nil {
			t.Errorf("Query(%q): %v", c.src, err)
			continue
		}
		if res.Len() != c.want {
			t.Errorf("Query(%q): %d rows, want %d", c.src, res.Len(), c.want)
		}
	}
}

// TestQueryStreamEndToEnd drives the streaming facade: rows arrive
// through emit, LIMIT stops the run early, and the result retains stats
// only.
func TestQueryStreamEndToEnd(t *testing.T) {
	db := dupDB(t)
	var n int
	res, err := db.QueryStream(context.Background(),
		`SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y } LIMIT 1`,
		func(row Row) bool {
			n++
			if len(row) != 1 {
				t.Errorf("projected row width = %d, want 1", len(row))
			}
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || res.Stats.NumMatches != 1 {
		t.Errorf("emitted %d rows (stats %d), want 1", n, res.Stats.NumMatches)
	}
	if !res.Stats.EarlyStop {
		t.Error("LIMIT 1 over 5 matches should stop the engine early")
	}
	if res.Rows != nil {
		t.Error("streaming result must not retain rows")
	}
}
