package gstored

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"gstored/internal/remote"
)

// workerGraph builds a deterministic dense graph; each call returns an
// independent copy (own dictionary), so twin databases never share
// mutable state.
func workerGraph() *Graph {
	rng := rand.New(rand.NewSource(7))
	g := NewGraph()
	node := func(i int) string { return fmt.Sprintf("http://ex.org/v%d", i) }
	for p := 0; p < 3; p++ {
		pred := fmt.Sprintf("http://ex.org/p%d", p)
		for k := 0; k < 150; k++ {
			g.AddIRIs(node(rng.Intn(60)), pred, node(rng.Intn(60)))
		}
	}
	// A known triple the update test deletes.
	g.AddIRIs("http://ex.org/seedS", "http://ex.org/p0", "http://ex.org/seedO")
	return g
}

// startWorkers launches n worker processes (goroutine-hosted, real TCP
// on loopback) and returns their addresses plus a stopper.
func startWorkers(t *testing.T, n int) ([]string, func()) {
	t.Helper()
	var addrs []string
	var workers []*remote.Worker
	var dones []chan struct{}
	for i := 0; i < n; i++ {
		w := remote.NewWorker(0)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			if err := w.Serve(ln); err != nil {
				t.Errorf("worker serve: %v", err)
			}
		}()
		addrs = append(addrs, ln.Addr().String())
		workers = append(workers, w)
		dones = append(dones, done)
	}
	var once bool
	stop := func() {
		if once {
			return
		}
		once = true
		for i, w := range workers {
			if err := w.Close(); err != nil {
				t.Errorf("worker close: %v", err)
			}
			<-dones[i]
		}
	}
	t.Cleanup(stop)
	return addrs, stop
}

func queryRows(t *testing.T, db *DB, sparqlText string) [][]string {
	t.Helper()
	res, err := db.Query(sparqlText)
	if err != nil {
		t.Fatal(err)
	}
	return db.Rows(res)
}

const pathQuery = `SELECT ?x ?y ?z WHERE {
	?x <http://ex.org/p0> ?y .
	?y <http://ex.org/p1> ?z .
}`

const starQuery = `SELECT ?x ?a ?b WHERE {
	?x <http://ex.org/p0> ?a .
	?x <http://ex.org/p1> ?b .
}`

// TestWorkerModeEndToEnd runs the whole public API through worker mode
// against an in-process twin: queries, stats, health, updates, and a
// repartition must agree (ordered rows are deterministic, so equality is
// exact).
func TestWorkerModeEndToEnd(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	local, err := Open(workerGraph(), Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	wired, err := Open(workerGraph(), Config{Sites: 4, Workers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := wired.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	compare := func(label string) {
		t.Helper()
		for _, q := range []string{pathQuery, starQuery} {
			want := queryRows(t, local, q)
			got := queryRows(t, wired, q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s: worker-mode rows diverge (%d vs %d rows)", label, len(got), len(want))
			}
		}
	}
	compare("initial")

	// Wired executions report measured transport bytes.
	res, err := wired.Query(pathQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalShipment <= 0 {
		t.Errorf("wired shipment = %d, want > 0", res.Stats.TotalShipment)
	}
	var wire int64
	for _, fs := range res.Stats.Fragments {
		wire += fs.WireBytes
	}
	if wire <= 0 {
		t.Errorf("per-site wire bytes = %d, want > 0", wire)
	}

	// Health: every site up, served by a worker address, at epoch 1, with
	// the round-robin fragment count (4 fragments over 2 workers = 2 each).
	for _, st := range wired.SiteHealth(context.Background()) {
		if !st.Up {
			t.Fatalf("site %d down: %s", st.Site, st.Error)
		}
		if st.Addr != addrs[st.Site%2] {
			t.Errorf("site %d at %s, want %s", st.Site, st.Addr, addrs[st.Site%2])
		}
		if st.Epoch != 1 || st.Fragments != 2 {
			t.Errorf("site %d epoch %d / %d fragments, want 1 / 2", st.Site, st.Epoch, st.Fragments)
		}
	}

	// An update commits through the two-phase broadcast on both.
	update := `INSERT DATA { <http://ex.org/v1> <http://ex.org/p0> <http://ex.org/v2> . } ;
DELETE DATA { <http://ex.org/seedS> <http://ex.org/p0> <http://ex.org/seedO> . }`
	ctx := context.Background()
	ls, err := local.Update(ctx, update)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wired.Update(ctx, update)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Epoch != 2 || ws.Inserted != ls.Inserted || ws.Deleted != ls.Deleted {
		t.Fatalf("wired update = %+v, local = %+v", ws, ls)
	}
	compare("post-update")
	for _, st := range wired.SiteHealth(ctx) {
		if st.Epoch != 2 {
			t.Errorf("site %d at epoch %d after update, want 2", st.Site, st.Epoch)
		}
	}

	// A repartition ships every fragment; parity must survive the new
	// layout and site count.
	la, err := local.PlanPartition("semantic-hash", 3)
	if err != nil {
		t.Fatal(err)
	}
	wa, err := wired.PlanPartition("semantic-hash", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Repartition(la); err != nil {
		t.Fatal(err)
	}
	if err := wired.Repartition(wa); err != nil {
		t.Fatal(err)
	}
	if wired.NumSites() != 3 || wired.Epoch() != 3 {
		t.Fatalf("after repartition: %d sites at epoch %d", wired.NumSites(), wired.Epoch())
	}
	compare("post-repartition")
}

// TestWorkerKilledMidQuery kills both workers from inside the streaming
// emit callback while rows are still flowing: the query must return an
// error promptly — not hang on a dead socket, not pretend it finished.
func TestWorkerKilledMidQuery(t *testing.T) {
	// A hub star: 300×300 = 90k result rows stream from the hub's owning
	// site in ~350 row frames, so the worker is still producing when the
	// kill lands (the star fast path streams site rows straight through
	// the RPC, no coordinator-side materialization).
	g := NewGraph()
	for i := 0; i < 300; i++ {
		g.AddIRIs("http://ex.org/hub", "http://ex.org/p0", fmt.Sprintf("http://ex.org/a%d", i))
		g.AddIRIs("http://ex.org/hub", "http://ex.org/p1", fmt.Sprintf("http://ex.org/b%d", i))
	}
	addrs, stop := startWorkers(t, 2)
	db, err := Open(g, Config{Sites: 4, Workers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = db.Close() }() // transport already torn down; nothing left to fail

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rows := 0
	start := time.Now()
	_, err = db.QueryStream(ctx, starQuery, func(r Row) bool {
		rows++
		if rows == 1 {
			stop()
		}
		return true
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against killed workers reported success")
	}
	if ctx.Err() != nil {
		t.Fatalf("query hung until the guard deadline (%v): %v", elapsed, err)
	}
	if !strings.Contains(err.Error(), "remote") && !strings.Contains(err.Error(), "connection") {
		t.Logf("note: kill surfaced as %v", err)
	}
}

// TestMissedPrepareResync drops the prepare RPC for one site (the
// SkipPrepare hook models a lost message): the commit must draw
// need-sync from the worker, the coordinator must re-ship the full
// fragment, and the update must land with answers identical to an
// in-process twin that saw no failures.
func TestMissedPrepareResync(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	local, err := Open(workerGraph(), Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	wired, err := Open(workerGraph(), Config{Sites: 4, Workers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := wired.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	dropped := false
	wired.workers.SkipPrepare = func(site int, epoch uint64) bool {
		if site == 0 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	update := `INSERT DATA { <http://ex.org/v3> <http://ex.org/p1> <http://ex.org/v4> . }`
	ctx := context.Background()
	if _, err := local.Update(ctx, update); err != nil {
		t.Fatal(err)
	}
	ws, err := wired.Update(ctx, update)
	if err != nil {
		t.Fatalf("update through lost prepare: %v", err)
	}
	if !dropped {
		t.Fatal("hook never fired; the test exercised nothing")
	}
	if ws.Epoch != 2 {
		t.Fatalf("update landed at epoch %d, want 2", ws.Epoch)
	}
	for _, q := range []string{pathQuery, starQuery} {
		want := queryRows(t, local, q)
		got := queryRows(t, wired, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("post-resync rows diverge on %q", q)
		}
	}
	for _, st := range wired.SiteHealth(ctx) {
		if !st.Up || st.Epoch != 2 {
			t.Errorf("site %d: up=%v epoch=%d after resync", st.Site, st.Up, st.Epoch)
		}
	}
}

// TestWorkerModeGoroutineHygiene runs a full worker-mode lifecycle and
// checks the process returns to its baseline goroutine count: no leaked
// RPC readers, no stuck connection handlers.
func TestWorkerModeGoroutineHygiene(t *testing.T) {
	before := runtime.NumGoroutine()

	addrs, stop := startWorkers(t, 2)
	db, err := Open(workerGraph(), Config{Sites: 4, Workers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Query(pathQuery); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after teardown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
