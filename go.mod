module gstored

go 1.24
