// Package gstored is a from-scratch Go implementation of the distributed
// SPARQL engine of Peng, Zou and Guan, "Accelerating Partial Evaluation in
// Distributed SPARQL Query Evaluation" (ICDE 2019): the partial evaluation
// and assembly framework of Peng et al. (VLDB J. 25(2), 2016) accelerated
// with LEC-feature pruning, LEC-feature assembly, and internal-candidate
// bit vectors, over a simulated multi-site cluster with byte-accurate
// data-shipment accounting.
//
// Quick start:
//
//	g := gstored.GenerateLUBM(4)
//	db, err := gstored.Open(g.Graph, gstored.Config{Sites: 12})
//	if err != nil { ... }
//	res, err := db.Query(`SELECT ?x WHERE { ?x <p> ?y }`)
//	for _, row := range db.Rows(res) { fmt.Println(row) }
//
// The package re-exports the pieces a downstream user needs — RDF terms
// and graphs, N-Triples I/O, partitioning strategies and their Section VII
// cost model, the four engine modes of the paper's ablation, and the
// paper's three benchmark workload generators — while the implementation
// lives in internal packages documented in DESIGN.md.
package gstored

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"gstored/internal/engine"
	"gstored/internal/fragment"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/querylog"
	"gstored/internal/rdf"
	"gstored/internal/sparql"
	"gstored/internal/store"
	"gstored/internal/workload"
)

// Re-exported data-model types. See the rdf internal package for full
// documentation.
type (
	// Term is one RDF term (IRI, literal or blank node).
	Term = rdf.Term
	// TermID is a dictionary-encoded term; 0 (NoTerm) means unbound.
	TermID = rdf.TermID
	// Graph is a mutable triple collection with its dictionary.
	Graph = rdf.Graph
	// Dictionary maps terms to IDs and back.
	Dictionary = rdf.Dictionary
	// QueryGraph is a compiled SPARQL basic graph pattern.
	QueryGraph = query.Graph
	// Result is a completed query execution: rows plus per-stage stats.
	Result = engine.Result
	// Row is one result row, indexed by query variable.
	Row = engine.Row
	// Stats carries the per-stage metrics of the paper's Tables I-III.
	Stats = engine.Stats
	// Mode selects the optimization level (the Fig. 9 ablation).
	Mode = engine.Mode
	// Dataset is a generated benchmark workload (graph + queries).
	Dataset = workload.Dataset
	// BenchQuery is one benchmark query with its shape/selectivity class.
	BenchQuery = workload.BenchQuery
	// CostBreakdown carries the Section VII partitioning cost terms.
	CostBreakdown = partition.CostBreakdown
	// Assignment maps every graph vertex to its owning fragment.
	Assignment = partition.Assignment
	// Workload is per-predicate traversal frequency, the input to the
	// workload-weighted Section VII cost model.
	Workload = partition.Workload
	// Recommendation is the partition advisor's verdict: the (strategy, k)
	// minimizing the workload-weighted cost, with the full cost table.
	Recommendation = partition.Recommendation
	// PartitionCandidate is one evaluated (strategy, k) configuration.
	PartitionCandidate = partition.Candidate
	// QueryLog is a bounded record of the executed query workload.
	QueryLog = querylog.Log
	// QueryLogSnapshot is a point-in-time copy of a QueryLog.
	QueryLogSnapshot = querylog.Snapshot
)

// NoTerm is the unbound sentinel in rows and serialization vectors.
const NoTerm = rdf.NoTerm

// Engine modes, weakest to strongest (Section VIII-C ablation).
const (
	ModeBasic = engine.Basic // partial evaluation and assembly of [18]
	ModeLA    = engine.LA    // + LEC-feature-based assembly
	ModeLO    = engine.LO    // + LEC-feature-based pruning
	ModeFull  = engine.Full  // + internal-candidate bit vectors
)

// Term constructors.
var (
	// IRI returns an IRI term.
	IRI = rdf.NewIRI
	// Literal returns a plain literal term.
	Literal = rdf.NewLiteral
	// LangLiteral returns a language-tagged literal term.
	LangLiteral = rdf.NewLangLiteral
	// TypedLiteral returns a datatyped literal term.
	TypedLiteral = rdf.NewTypedLiteral
	// Blank returns a blank-node term.
	Blank = rdf.NewBlank
)

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph { return rdf.NewGraph() }

// ReadNTriples parses an N-Triples document into a new graph.
func ReadNTriples(r io.Reader) (*Graph, error) { return rdf.ReadNTriples(r) }

// WriteNTriples serializes g in canonical N-Triples.
func WriteNTriples(w io.Writer, g *Graph) error { return rdf.WriteNTriples(w, g) }

// Config tunes Open.
type Config struct {
	// Sites is the number of fragments/sites (default 12, the paper's
	// cluster size).
	Sites int
	// Strategy picks the partitioning: "hash" (default), "semantic-hash",
	// "metis", or "best" (run all three and keep the smallest Section VII
	// cost).
	Strategy string
	// Mode is the engine optimization level; the zero value runs the full
	// system (ModeFull).
	Mode Mode
	// CandidateBits sizes the Section VI bit vectors (0 = default 64 Ki).
	CandidateBits int
	// MaxPartialMatches aborts runaway queries (0 = unlimited).
	MaxPartialMatches int
}

// DB is a distributed RDF database: a partitioned graph hosted on a
// simulated cluster, ready to answer SPARQL queries.
//
// The cluster state (fragments, engine) is immutable once built and
// swapped atomically by Repartition, so any number of goroutines may
// query the database while another repartitions it: every execution
// pins one consistent cluster for its whole run.
type DB struct {
	// Graph is the source data (shared dictionary).
	Graph *Graph
	// Costs reports CostPartitioning per strategy evaluated at Open time.
	Costs map[string]CostBreakdown
	// StrategyName is the partitioning selected at Open time. It does not
	// follow Repartition; use Strategy for the partitioning live now.
	StrategyName string

	cfg Config
	st  *store.Store

	// state is the hot-swappable cluster: fragments + engine + identity.
	// Loaded once per operation so concurrent queries see either the old
	// or the new cluster in full, never a mix.
	state atomic.Pointer[dbState]
	// repartitionMu serializes Repartition; queries never take it.
	repartitionMu sync.Mutex
}

// dbState is one immutable cluster generation.
type dbState struct {
	dist     *fragment.Distributed
	eng      *engine.Engine
	strategy string
	epoch    uint64
}

func (db *DB) load() *dbState { return db.state.Load() }

// Strategies returns the three partitioning strategies of the paper.
func Strategies() []partition.Strategy {
	return []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}}
}

func strategyByName(name string) (partition.Strategy, error) {
	switch strings.ToLower(name) {
	case "", "hash":
		return partition.Hash{}, nil
	case "semantic-hash", "semantic":
		return partition.SemanticHash{}, nil
	case "metis":
		return partition.Metis{}, nil
	default:
		return nil, fmt.Errorf("gstored: unknown partitioning strategy %q", name)
	}
}

// Open partitions g into cfg.Sites fragments with cfg.Strategy and builds
// the distributed engine over them.
func Open(g *Graph, cfg Config) (*DB, error) {
	if cfg.Sites == 0 {
		cfg.Sites = 12
	}
	if cfg.Sites < 0 {
		return nil, fmt.Errorf("gstored: invalid site count %d", cfg.Sites)
	}
	st := store.FromGraph(g)
	db := &DB{Graph: g, cfg: cfg, st: st, Costs: map[string]CostBreakdown{}}

	var assign *partition.Assignment
	if strings.EqualFold(cfg.Strategy, "best") {
		best, costs, err := partition.SelectBest(st, cfg.Sites, Strategies()...)
		if err != nil {
			return nil, err
		}
		assign, db.Costs = best, costs
	} else {
		strat, err := strategyByName(cfg.Strategy)
		if err != nil {
			return nil, err
		}
		assign, err = strat.Partition(st, cfg.Sites)
		if err != nil {
			return nil, err
		}
		db.Costs[strat.Name()] = partition.Cost(st, assign)
	}
	db.StrategyName = assign.StrategyName

	dist, err := fragment.Build(st, assign)
	if err != nil {
		return nil, err
	}
	db.state.Store(&dbState{dist: dist, eng: engine.New(dist), strategy: assign.StrategyName, epoch: 1})
	return db, nil
}

// Repartition rebuilds the cluster under assignment a and atomically
// swaps it in. The rebuild happens off to the side: queries keep running
// against the previous cluster and are never blocked; once the swap
// lands, new executions see the new fragments while in-flight ones
// finish on the old generation. Each successful swap advances Epoch —
// layers caching results derived from cluster state (e.g. the HTTP
// result cache) must key on or invalidate by epoch.
//
// The assignment must cover every vertex of the graph (it is validated
// before the swap, so a partial assignment can never route traffic);
// its K becomes the new site count.
func (db *DB) Repartition(a *Assignment) error {
	if a == nil {
		return fmt.Errorf("gstored: nil assignment")
	}
	db.repartitionMu.Lock()
	defer db.repartitionMu.Unlock()
	// fragment.Build validates full coverage; an uncovered vertex fails
	// here, before anything swaps.
	dist, err := fragment.Build(db.st, a)
	if err != nil {
		return err
	}
	prev := db.load()
	name := a.StrategyName
	if name == "" {
		name = prev.strategy
	}
	db.state.Store(&dbState{dist: dist, eng: engine.New(dist), strategy: name, epoch: prev.epoch + 1})
	return nil
}

// PlanPartition computes (without applying) an assignment of the
// database's graph under the named strategy into k fragments. Feed the
// result to Repartition, or inspect its cost first via PartitionCost.
func (db *DB) PlanPartition(strategyName string, k int) (*Assignment, error) {
	strat, err := strategyByName(strategyName)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("gstored: invalid site count %d", k)
	}
	return strat.Partition(db.st, k)
}

// Advise evaluates the paper's three partitioning strategies at each
// candidate site count against an observed workload (see
// QueryLogSnapshot.Workload) and recommends the configuration with the
// smallest workload-weighted Section VII cost. With an empty workload
// the recommendation coincides with the data-only Section VII choice.
func (db *DB) Advise(w Workload, ks ...int) (*Recommendation, error) {
	if len(ks) == 0 {
		ks = []int{db.NumSites()}
	}
	return partition.Advisor{Strategies: Strategies()}.Advise(db.st, w, ks)
}

// AdviseStrategies is Advise restricted to the named strategies (nil or
// empty means all three).
func (db *DB) AdviseStrategies(w Workload, strategyNames []string, ks ...int) (*Recommendation, error) {
	strategies := Strategies()
	if len(strategyNames) > 0 {
		strategies = strategies[:0:0]
		for _, name := range strategyNames {
			s, err := strategyByName(name)
			if err != nil {
				return nil, err
			}
			strategies = append(strategies, s)
		}
	}
	if len(ks) == 0 {
		ks = []int{db.NumSites()}
	}
	return partition.Advisor{Strategies: strategies}.Advise(db.st, w, ks)
}

// ReplayQueryLog reads a saved JSONL query log (written by the serving
// layer) and replays it into a fresh QueryLog against db's dictionary:
// each record is compiled with ParseReadOnly and observed under its
// canonical key at its recorded multiplicity. Unparseable records are
// counted in skipped rather than failing the replay (a served log can
// contain queries from a different dataset or schema version). capacity
// sizes the log (<= 0 selects the default).
func ReplayQueryLog(db *DB, r io.Reader, capacity int) (log *QueryLog, replayed, skipped uint64, err error) {
	records, err := querylog.ReadRecords(r)
	if err != nil {
		return nil, 0, 0, err
	}
	log = querylog.New(capacity)
	for _, rec := range records {
		q, perr := db.ParseReadOnly(rec.Query)
		if perr != nil {
			skipped++
			continue
		}
		key := fmt.Sprintf("m%d|%s", db.Mode(), query.CanonicalKey(q))
		n := rec.Count
		if n == 0 {
			n = 1
		}
		log.ObserveN(key, rec.Query, q, engine.Stats{}, n)
		replayed += n
	}
	return log, replayed, skipped, nil
}

// Epoch identifies the current cluster generation; Repartition advances
// it. Results computed under different epochs are not interchangeable —
// caches keyed on queries alone must also key on (or flush at) the
// epoch.
func (db *DB) Epoch() uint64 { return db.load().epoch }

// Strategy reports the partitioning live now: StrategyName at Open,
// then whatever Repartition last applied.
func (db *DB) Strategy() string { return db.load().strategy }

// ClusterInfo reports the live strategy, site count, and epoch as one
// consistent snapshot — a single generation load, so a swap landing
// between fields cannot tear the tuple the way separate
// Strategy/NumSites/Epoch calls can.
func (db *DB) ClusterInfo() (strategy string, sites int, epoch uint64) {
	s := db.load()
	return s.strategy, len(s.dist.Fragments), s.epoch
}

// NewQueryLog returns a bounded query-workload log (capacity <= 0
// selects the default). Feed it each executed query and pass
// log.Snapshot().Workload(0) to Advise.
func NewQueryLog(capacity int) *QueryLog { return querylog.New(capacity) }

// Parse compiles SPARQL text against the database dictionary, assigning
// fresh dictionary IDs to constants the data has not seen.
func (db *DB) Parse(sparqlText string) (*QueryGraph, error) {
	return sparql.Parse(sparqlText, db.Graph.Dict)
}

// ParseReadOnly compiles SPARQL text without mutating the dictionary:
// constants absent from the data resolve to placeholder IDs that match
// nothing. Serving layers handling untrusted query streams should use
// this over Parse so clients cannot grow the shared dictionary.
func (db *DB) ParseReadOnly(sparqlText string) (*QueryGraph, error) {
	return sparql.ParseReadOnly(sparqlText, db.Graph.Dict)
}

// Query parses and executes SPARQL text under the configured mode.
//
// DB is safe for concurrent use: any number of goroutines may issue
// queries against the same database simultaneously.
func (db *DB) Query(sparqlText string) (*Result, error) {
	return db.QueryContext(context.Background(), sparqlText)
}

// QueryContext is Query with cooperative cancellation: when ctx is
// canceled or its deadline passes, execution stops promptly and the
// context's error is returned.
func (db *DB) QueryContext(ctx context.Context, sparqlText string) (*Result, error) {
	q, err := db.Parse(sparqlText)
	if err != nil {
		return nil, err
	}
	return db.QueryGraphContext(ctx, q)
}

// QueryGraph executes a compiled query under the configured mode.
func (db *DB) QueryGraph(q *QueryGraph) (*Result, error) {
	return db.QueryGraphMode(q, db.mode())
}

// QueryGraphContext is QueryGraph with cooperative cancellation.
func (db *DB) QueryGraphContext(ctx context.Context, q *QueryGraph) (*Result, error) {
	return db.QueryGraphModeContext(ctx, q, db.mode())
}

// QueryMode parses and executes SPARQL text under an explicit mode.
func (db *DB) QueryMode(sparqlText string, mode Mode) (*Result, error) {
	q, err := db.Parse(sparqlText)
	if err != nil {
		return nil, err
	}
	return db.QueryGraphMode(q, mode)
}

// QueryGraphMode executes a compiled query under an explicit mode.
func (db *DB) QueryGraphMode(q *QueryGraph, mode Mode) (*Result, error) {
	return db.QueryGraphModeContext(context.Background(), q, mode)
}

// QueryGraphModeContext executes a compiled query under an explicit mode
// with cooperative cancellation.
func (db *DB) QueryGraphModeContext(ctx context.Context, q *QueryGraph, mode Mode) (*Result, error) {
	// One state load pins a consistent cluster generation for the whole
	// execution, even if Repartition swaps mid-flight.
	return db.load().eng.ExecuteContext(ctx, q, engine.Config{
		Mode:              mode,
		CandidateBits:     db.cfg.CandidateBits,
		MaxPartialMatches: db.cfg.MaxPartialMatches,
	})
}

// QueryStream parses sparqlText and executes it in unordered
// first-row-early delivery mode; see QueryGraphStreamContext.
func (db *DB) QueryStream(ctx context.Context, sparqlText string, emit func(Row) bool) (*Result, error) {
	q, err := db.Parse(sparqlText)
	if err != nil {
		return nil, err
	}
	return db.QueryGraphStreamContext(ctx, q, emit)
}

// QueryGraphStreamContext executes a compiled query in unordered
// first-row-early delivery mode: projected rows flow to emit as the
// engine produces them — no terminal canonical sort, no materialized row
// set — and once the query's LIMIT (after OFFSET, with DISTINCT dedup
// applied at the projection boundary) is satisfied, the remaining
// distributed work is cancelled (Result.Stats.EarlyStop). The row passed
// to emit is reused between calls; copy it to retain it. Returning false
// from emit stops the execution. The returned Result carries statistics
// only — Rows is nil — and row order varies between runs.
func (db *DB) QueryGraphStreamContext(ctx context.Context, q *QueryGraph, emit func(Row) bool) (*Result, error) {
	return db.load().eng.ExecuteStream(ctx, q, engine.Config{
		Mode:              db.mode(),
		CandidateBits:     db.cfg.CandidateBits,
		MaxPartialMatches: db.cfg.MaxPartialMatches,
	}, emit)
}

// Mode reports the engine mode queries run under: the configured mode,
// with the zero value (ModeUnset) resolving to ModeFull — a zero-value
// Config runs the complete system, matching the engine's own resolution.
func (db *DB) Mode() Mode {
	if m := db.mode(); m != engine.ModeUnset {
		return m
	}
	return ModeFull
}

func (db *DB) mode() Mode {
	// The zero value is engine.ModeUnset, which the engine resolves to
	// Full at execution time, so an unconfigured DB runs the full system.
	return db.cfg.Mode
}

// CanonicalQueryKey returns a deterministic cache key identifying q up to
// variable renaming and triple reordering; see query.CanonicalKey. Keys
// are only comparable between queries parsed against this database.
func (db *DB) CanonicalQueryKey(q *QueryGraph) string {
	return query.CanonicalKey(q)
}

// Rows renders the projected rows of a result as decoded term strings.
func (db *DB) Rows(res *Result) [][]string {
	out := make([][]string, 0, res.Len())
	res.EachProjected(func(row Row) bool {
		cells := make([]string, len(row))
		for j, id := range row {
			if id == NoTerm {
				cells[j] = "NULL"
				continue
			}
			cells[j] = db.Graph.Dict.MustDecode(id).String()
		}
		out = append(out, cells)
		return true
	})
	return out
}

// Columns returns the projected variable names of a query.
func (db *DB) Columns(q *QueryGraph) []string {
	idx := q.Projection
	if len(idx) == 0 {
		idx = make([]int, len(q.Vars))
		for i := range idx {
			idx[i] = i
		}
	}
	out := make([]string, len(idx))
	for i, v := range idx {
		out[i] = "?" + q.Vars[v]
	}
	return out
}

// NumSites reports the deployment's current site count (it changes when
// Repartition applies an assignment with a different K).
func (db *DB) NumSites() int { return len(db.load().dist.Fragments) }

// Distributed exposes the current cluster's fragments; intended for
// diagnostics and the experiment harness. The returned value is one
// immutable generation — it does not follow a later Repartition.
func (db *DB) Distributed() *fragment.Distributed { return db.load().dist }

// Store exposes the indexed global graph the partitioner and advisor
// evaluate against; intended for the serving layer and diagnostics.
func (db *DB) Store() *store.Store { return db.st }

// PartitionCost evaluates the Section VII cost model for one strategy
// without building a database.
func PartitionCost(g *Graph, strategyName string, k int) (CostBreakdown, error) {
	strat, err := strategyByName(strategyName)
	if err != nil {
		return CostBreakdown{}, err
	}
	st := store.FromGraph(g)
	a, err := strat.Partition(st, k)
	if err != nil {
		return CostBreakdown{}, err
	}
	return partition.Cost(st, a), nil
}

// GenerateLUBM returns the LUBM-style dataset at the given university
// count (0 = default) with queries LQ1-LQ7.
func GenerateLUBM(universities int) *Dataset {
	return workload.NewLUBM(workload.LUBMConfig{Universities: universities})
}

// GenerateYAGO returns the YAGO2-style dataset at the given scale
// (0 = default) with queries YQ1-YQ4.
func GenerateYAGO(scale int) *Dataset {
	return workload.NewYAGO(workload.YAGOConfig{Scale: scale})
}

// GenerateBTC returns the BTC-style dataset at the given scale
// (0 = default) with queries BQ1-BQ7.
func GenerateBTC(scale int) *Dataset {
	return workload.NewBTC(workload.BTCConfig{Scale: scale})
}
