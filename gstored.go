// Package gstored is a from-scratch Go implementation of the distributed
// SPARQL engine of Peng, Zou and Guan, "Accelerating Partial Evaluation in
// Distributed SPARQL Query Evaluation" (ICDE 2019): the partial evaluation
// and assembly framework of Peng et al. (VLDB J. 25(2), 2016) accelerated
// with LEC-feature pruning, LEC-feature assembly, and internal-candidate
// bit vectors, over a simulated multi-site cluster with byte-accurate
// data-shipment accounting.
//
// Quick start:
//
//	g := gstored.GenerateLUBM(4)
//	db, err := gstored.Open(g.Graph, gstored.Config{Sites: 12})
//	if err != nil { ... }
//	res, err := db.Query(`SELECT ?x WHERE { ?x <p> ?y }`)
//	for _, row := range db.Rows(res) { fmt.Println(row) }
//
// The package re-exports the pieces a downstream user needs — RDF terms
// and graphs, N-Triples I/O, partitioning strategies and their Section VII
// cost model, the four engine modes of the paper's ablation, and the
// paper's three benchmark workload generators — while the implementation
// lives in internal packages documented in DESIGN.md.
package gstored

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gstored/internal/cluster"
	"gstored/internal/engine"
	"gstored/internal/fragment"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/querylog"
	"gstored/internal/rdf"
	"gstored/internal/remote"
	"gstored/internal/sparql"
	"gstored/internal/store"
	"gstored/internal/workload"
)

// Re-exported data-model types. See the rdf internal package for full
// documentation.
type (
	// Term is one RDF term (IRI, literal or blank node).
	Term = rdf.Term
	// TermID is a dictionary-encoded term; 0 (NoTerm) means unbound.
	TermID = rdf.TermID
	// Graph is a mutable triple collection with its dictionary.
	Graph = rdf.Graph
	// Dictionary maps terms to IDs and back.
	Dictionary = rdf.Dictionary
	// QueryGraph is a compiled SPARQL basic graph pattern.
	QueryGraph = query.Graph
	// Result is a completed query execution: rows plus per-stage stats.
	Result = engine.Result
	// Row is one result row, indexed by query variable.
	Row = engine.Row
	// Stats carries the per-stage metrics of the paper's Tables I-III.
	Stats = engine.Stats
	// FragmentStats is one site's row of Stats.Fragments: per-fragment
	// match counts, shipment attribution, and wall time.
	FragmentStats = engine.FragmentStats
	// PlanEdge is one step of the compiled selectivity-ordered
	// edge-evaluation plan reported in Stats.Plan.
	PlanEdge = engine.PlanEdge
	// Mode selects the optimization level (the Fig. 9 ablation).
	Mode = engine.Mode
	// Dataset is a generated benchmark workload (graph + queries).
	Dataset = workload.Dataset
	// BenchQuery is one benchmark query with its shape/selectivity class.
	BenchQuery = workload.BenchQuery
	// CostBreakdown carries the Section VII partitioning cost terms.
	CostBreakdown = partition.CostBreakdown
	// Assignment maps every graph vertex to its owning fragment.
	Assignment = partition.Assignment
	// Workload is per-predicate traversal frequency, the input to the
	// workload-weighted Section VII cost model.
	Workload = partition.Workload
	// Recommendation is the partition advisor's verdict: the (strategy, k)
	// minimizing the workload-weighted cost, with the full cost table.
	Recommendation = partition.Recommendation
	// PartitionCandidate is one evaluated (strategy, k) configuration.
	PartitionCandidate = partition.Candidate
	// QueryLog is a bounded record of the executed query workload.
	QueryLog = querylog.Log
	// QueryLogSnapshot is a point-in-time copy of a QueryLog.
	QueryLogSnapshot = querylog.Snapshot
)

// NoTerm is the unbound sentinel in rows and serialization vectors.
const NoTerm = rdf.NoTerm

// Engine modes, weakest to strongest (Section VIII-C ablation).
const (
	ModeBasic = engine.Basic // partial evaluation and assembly of [18]
	ModeLA    = engine.LA    // + LEC-feature-based assembly
	ModeLO    = engine.LO    // + LEC-feature-based pruning
	ModeFull  = engine.Full  // + internal-candidate bit vectors
)

// Term constructors.
var (
	// IRI returns an IRI term.
	IRI = rdf.NewIRI
	// Literal returns a plain literal term.
	Literal = rdf.NewLiteral
	// LangLiteral returns a language-tagged literal term.
	LangLiteral = rdf.NewLangLiteral
	// TypedLiteral returns a datatyped literal term.
	TypedLiteral = rdf.NewTypedLiteral
	// Blank returns a blank-node term.
	Blank = rdf.NewBlank
)

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph { return rdf.NewGraph() }

// ReadNTriples parses an N-Triples document into a new graph.
func ReadNTriples(r io.Reader) (*Graph, error) { return rdf.ReadNTriples(r) }

// WriteNTriples serializes g in canonical N-Triples.
func WriteNTriples(w io.Writer, g *Graph) error { return rdf.WriteNTriples(w, g) }

// Config tunes Open.
type Config struct {
	// Sites is the number of fragments/sites (default 12, the paper's
	// cluster size).
	Sites int
	// Strategy picks the partitioning: "hash" (default), "semantic-hash",
	// "metis", or "best" (run all three and keep the smallest Section VII
	// cost).
	Strategy string
	// Mode is the engine optimization level; the zero value runs the full
	// system (ModeFull).
	Mode Mode
	// CandidateBits sizes the Section VI bit vectors (0 = default 64 Ki).
	CandidateBits int
	// MaxPartialMatches aborts runaway queries (0 = unlimited).
	MaxPartialMatches int
	// EvalWorkers bounds each query execution's evaluation worker pool
	// (0 = GOMAXPROCS; 1 = fully sequential evaluation).
	EvalWorkers int
	// Workers lists worker-process addresses (host:port, from `gstored
	// worker`). When non-empty the fragments are shipped to and hosted by
	// those processes, and the engine scatters over the RPC transport;
	// fragments map to workers round-robin by ID, so site counts above
	// len(Workers) are fine. Empty (the default) keeps every site
	// in-process — the fast single-node path. Worker-mode databases
	// should be Closed to release their connections.
	Workers []string
}

// DB is a distributed RDF database: a partitioned graph hosted on a
// simulated cluster, ready to answer SPARQL queries.
//
// The cluster state (fragments, engine) is immutable once built and
// swapped atomically by Repartition, so any number of goroutines may
// query the database while another repartitions it: every execution
// pins one consistent cluster for its whole run.
type DB struct {
	// Graph is the source data (shared dictionary). Update keeps its
	// triple list in sync with the committed generations, but readers of
	// Graph.Triples are not synchronized with concurrent updates — use
	// NumTriples for a live count, and quiesce writes before serializing
	// the graph (e.g. WriteNTriples). Graph.Dict is safe for concurrent
	// use at all times.
	Graph *Graph
	// Costs reports CostPartitioning per strategy evaluated at Open time.
	Costs map[string]CostBreakdown
	// StrategyName is the partitioning selected at Open time. It does not
	// follow Repartition; use Strategy for the partitioning live now.
	StrategyName string

	cfg Config

	// state is the hot-swappable cluster: fragments + engine + identity.
	// Loaded once per operation so concurrent queries see either the old
	// or the new cluster in full, never a mix. The indexed global store
	// travels inside the generation (dist.Global), so an Update's new
	// index and new fragments land in one swap.
	state atomic.Pointer[dbState]
	// swapMu serializes the writers of state — Repartition and Update;
	// queries never take it.
	swapMu sync.Mutex

	// workers is the RPC coordinator of a worker-mode database (nil
	// in-process). Sites hand out immutable per-epoch handles; the
	// coordinator owns the shared connection pools underneath them.
	workers *remote.Coordinator
}

// dbState is one immutable cluster generation.
type dbState struct {
	dist     *fragment.Distributed
	eng      *engine.Engine
	sites    []cluster.Site
	strategy string
	epoch    uint64
}

func (db *DB) load() *dbState { return db.state.Load() }

// Strategies returns the three partitioning strategies of the paper.
func Strategies() []partition.Strategy {
	return []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}}
}

func strategyByName(name string) (partition.Strategy, error) {
	switch strings.ToLower(name) {
	case "", "hash":
		return partition.Hash{}, nil
	case "semantic-hash", "semantic":
		return partition.SemanticHash{}, nil
	case "metis":
		return partition.Metis{}, nil
	default:
		return nil, fmt.Errorf("gstored: unknown partitioning strategy %q", name)
	}
}

// Open partitions g into cfg.Sites fragments with cfg.Strategy and builds
// the distributed engine over them.
func Open(g *Graph, cfg Config) (*DB, error) {
	if cfg.Sites == 0 {
		cfg.Sites = 12
	}
	if cfg.Sites < 0 {
		return nil, fmt.Errorf("gstored: invalid site count %d", cfg.Sites)
	}
	st := store.FromGraph(g)
	db := &DB{Graph: g, cfg: cfg, Costs: map[string]CostBreakdown{}}

	var assign *partition.Assignment
	if strings.EqualFold(cfg.Strategy, "best") {
		best, costs, err := partition.SelectBest(st, cfg.Sites, Strategies()...)
		if err != nil {
			return nil, err
		}
		assign, db.Costs = best, costs
	} else {
		strat, err := strategyByName(cfg.Strategy)
		if err != nil {
			return nil, err
		}
		assign, err = strat.Partition(st, cfg.Sites)
		if err != nil {
			return nil, err
		}
		db.Costs[strat.Name()] = partition.Cost(st, assign)
	}
	db.StrategyName = assign.StrategyName

	dist, err := fragment.Build(st, assign)
	if err != nil {
		return nil, err
	}
	if len(cfg.Workers) > 0 {
		coord, err := remote.Connect(cfg.Workers...)
		if err != nil {
			return nil, err
		}
		db.workers = coord
	}
	// The initial ship is epoch 1's two-phase broadcast with every
	// fragment touched: workers stage their fragments at prepare and
	// start serving at commit; in-process the same path just builds the
	// LocalSite handles.
	//lint:allow ctxflow Open is the documented context-free constructor; the ship is bounded by the transport's own deadlines
	sites, err := db.swapGenerations(context.Background(), nil, dist, 1, nil)
	if err != nil {
		if db.workers != nil {
			_ = db.workers.Close() // already failing; connection cleanup is best-effort
		}
		return nil, err
	}
	db.state.Store(&dbState{dist: dist, eng: engine.NewWithSites(dist, sites), sites: sites, strategy: assign.StrategyName, epoch: 1})
	return db, nil
}

// Close releases the worker connections of a worker-mode database; for a
// single-process database it is a no-op. Close does not stop the worker
// processes — they keep serving their fragments for the next
// coordinator.
func (db *DB) Close() error {
	if db.workers != nil {
		return db.workers.Close()
	}
	return nil
}

// newSite returns a fresh, empty Site handle for fragment id — an RPC
// client bound to a worker in worker mode, a LocalSite otherwise. The
// handle serves nothing until a prepare ships it a fragment.
func (db *DB) newSite(id int) cluster.Site {
	if db.workers != nil {
		return db.workers.NewSite(id)
	}
	return cluster.NewLocalSite(id, nil, 0)
}

// swapGenerations is the two-phase epoch broadcast: phase one prepares
// every site of the new generation — shipping the fragment where the
// delta touched it (touched lists rebuilt fragment IDs; nil means all,
// as does any change in site count), carrying the resident fragment
// forward where it did not — and phase two commits, atomically advancing
// each site to the new epoch. A site that lost its state answers either
// phase with cluster.ErrNeedSync and gets the full fragment re-shipped
// before the broadcast proceeds; any other failure aborts the swap with
// the previous generation still live everywhere (workers prune only at
// commit, and a staged epoch that never commits is harmless).
func (db *DB) swapGenerations(ctx context.Context, prev []cluster.Site, dist *fragment.Distributed, epoch uint64, touched []int) ([]cluster.Site, error) {
	k := len(dist.Fragments)
	all := touched == nil || len(prev) != k
	isTouched := make(map[int]bool, len(touched))
	for _, id := range touched {
		isTouched[id] = true
	}

	// Phase 1: prepare. Sites stage the new generation without serving it.
	staged := make([]cluster.Site, k)
	for i := 0; i < k; i++ {
		s := db.newSite(i)
		if i < len(prev) {
			s = prev[i]
		}
		var payload *fragment.Fragment
		if all || isTouched[i] {
			payload = dist.Fragments[i]
		}
		next, err := s.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapPrepare, Epoch: epoch, Fragment: payload})
		if errors.Is(err, cluster.ErrNeedSync) {
			// The site cannot carry its fragment forward (restarted or
			// never shipped): re-sync with the full fragment.
			next, err = s.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapPrepare, Epoch: epoch, Fragment: dist.Fragments[i]})
		}
		if err != nil {
			return nil, fmt.Errorf("gstored: prepare epoch %d at site %d: %w", epoch, i, err)
		}
		staged[i] = next
	}

	// Phase 2: commit. Every site activates the staged epoch; a site that
	// missed the prepare (lost message, restart between phases) says so,
	// gets the full fragment, and commits on the retry.
	for i, s := range staged {
		committed, err := s.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapCommit, Epoch: epoch})
		if errors.Is(err, cluster.ErrNeedSync) {
			var next cluster.Site
			next, err = s.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapPrepare, Epoch: epoch, Fragment: dist.Fragments[i]})
			if err == nil {
				committed, err = next.SwapGeneration(ctx, cluster.GenerationSwap{Phase: cluster.SwapCommit, Epoch: epoch})
			}
		}
		if err != nil {
			return nil, fmt.Errorf("gstored: commit epoch %d at site %d: %w", epoch, i, err)
		}
		staged[i] = committed
	}
	return staged, nil
}

// SiteStatus is one site's row of SiteHealth.
type SiteStatus struct {
	// Site is the fragment/site ID.
	Site int
	// Addr is the worker address serving the site, or "in-process".
	Addr string
	// Epoch is the site's committed generation.
	Epoch uint64
	// Fragments counts fragments resident at the serving process (a
	// worker hosting three fragments reports 3 on each of its rows).
	Fragments int
	// Up reports that the site answered the probe.
	Up bool
	// Error is the probe failure when Up is false.
	Error string
}

// SiteHealth probes every site of the live generation — a real RPC round
// trip per site in worker mode, so it doubles as a liveness heartbeat.
// In-process sites always answer.
func (db *DB) SiteHealth(ctx context.Context) []SiteStatus {
	s := db.load()
	out := make([]SiteStatus, len(s.sites))
	for i, site := range s.sites {
		info, err := site.Stats(ctx)
		st := SiteStatus{Site: site.ID(), Addr: info.Addr, Epoch: info.Epoch, Fragments: info.Fragments, Up: err == nil}
		if err != nil {
			st.Error = err.Error()
		}
		out[i] = st
	}
	return out
}

// Repartition rebuilds the cluster under assignment a and atomically
// swaps it in. The rebuild happens off to the side: queries keep running
// against the previous cluster and are never blocked; once the swap
// lands, new executions see the new fragments while in-flight ones
// finish on the old generation. Each successful swap advances Epoch —
// layers caching results derived from cluster state (e.g. the HTTP
// result cache) must key on or invalidate by epoch.
//
// The assignment must cover every vertex of the graph (it is validated
// before the swap, so a partial assignment can never route traffic);
// its K becomes the new site count.
func (db *DB) Repartition(a *Assignment) error {
	if a == nil {
		return fmt.Errorf("gstored: nil assignment")
	}
	db.swapMu.Lock()
	defer db.swapMu.Unlock()
	prev := db.load()
	// fragment.Build validates full coverage; an uncovered vertex fails
	// here, before anything swaps. An assignment planned before a
	// concurrent Update added vertices fails the same way — plan against
	// the store you intend to swap.
	dist, err := fragment.Build(prev.dist.Global, a)
	if err != nil {
		return err
	}
	name := a.StrategyName
	if name == "" {
		name = prev.strategy
	}
	// A repartition rebuilds every fragment, so the epoch broadcast ships
	// them all (touched nil = all).
	//lint:allow ctxflow Repartition is the documented context-free admin entry point, matching its existing signature
	sites, err := db.swapGenerations(context.Background(), prev.sites, dist, prev.epoch+1, nil)
	if err != nil {
		return err
	}
	db.state.Store(&dbState{dist: dist, eng: engine.NewWithSites(dist, sites), sites: sites, strategy: name, epoch: prev.epoch + 1})
	return nil
}

// UpdateStats reports what one committed Update changed.
type UpdateStats struct {
	// Inserted and Deleted count the triples actually added and removed
	// under RDF set semantics: inserting a triple already present and
	// deleting one already absent are no-ops and count nothing.
	Inserted int
	Deleted  int
	// RebuiltFragments is how many fragments the delta touched — only
	// their stores, vertex sets and crossing replicas were rebuilt; every
	// other fragment is shared with the previous generation.
	RebuiltFragments int
	// Epoch is the generation serving the post-update data. A no-op
	// update reports the unchanged current epoch.
	Epoch uint64
}

// Update parses and applies a SPARQL 1.1 Update request restricted to
// the ground-data forms INSERT DATA { ... } / DELETE DATA { ... }
// (operations may be sequenced with ';'). The whole request commits as
// one atomic generation swap: a new immutable global index and the
// touched fragments are built off to the side (incremental maintenance
// of Definition 1 — untouched fragments are shared), then swapped in
// behind the same atomic pointer Repartition uses, with an epoch bump.
//
// Concurrent queries are never blocked and never see a half-applied
// write: executions in flight when the swap lands finish against the
// generation they pinned at start; executions starting after it see all
// of it. Layers caching results must key on (or flush at) Epoch — the
// HTTP serving layer does, which is what makes a cached pre-write
// answer unreachable after the write.
//
// Updates and Repartitions serialize on one internal mutex; an update
// that changes nothing (all inserts present, all deletes absent) swaps
// nothing and keeps the current epoch, so caches stay warm.
//
// Cost: fragment rebuilding is proportional to the fragments the delta
// touches, but each update also pays a vertex-count-proportional shallow
// copy of the global index's adjacency maps, and a delete additionally
// filters the Graph.Triples view (triple-count-proportional). Updates
// are cheap next to a repartition, not next to a point write in a
// storage engine; batch them when throughput matters.
func (db *DB) Update(ctx context.Context, updateText string) (UpdateStats, error) {
	u, err := sparql.ParseUpdate(updateText)
	if err != nil {
		return UpdateStats{}, err
	}
	db.swapMu.Lock()
	defer db.swapMu.Unlock()
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}
	cur := db.load()
	st := cur.dist.Global
	dict := db.Graph.Dict

	// Fold the operation sequence into one net set-semantics delta
	// against the live graph: ops execute in order over a presence
	// overlay, and only positions whose final presence differs from the
	// base become part of the delta (an insert-then-delete of an absent
	// triple nets to nothing). The fold works at the term level — keys
	// are canonical term strings, which are injective (Term.String
	// doubles as the dictionary key) — and the dictionary is consulted
	// read-only via Lookup: a term it never saw occurs in no stored
	// triple. Only the inserts that survive the fold Encode at commit
	// time, so a request that nets to nothing (or fails) cannot grow the
	// shared dictionary.
	type groundKey [3]string
	type overlay struct {
		gt   sparql.GroundTriple
		want bool
	}
	baseHas := func(gt sparql.GroundTriple) bool {
		s, okS := dict.Lookup(gt.S)
		p, okP := dict.Lookup(gt.P)
		o, okO := dict.Lookup(gt.O)
		return okS && okP && okO && st.HasTriple(s, p, o)
	}
	touched := make(map[groundKey]overlay)
	for _, op := range u.Ops {
		for _, gt := range op.Triples {
			k := groundKey{gt.S.String(), gt.P.String(), gt.O.String()}
			cur, ok := touched[k]
			present := cur.want
			if !ok {
				present = baseHas(gt)
			}
			if present == op.Delete {
				touched[k] = overlay{gt: gt, want: !op.Delete}
			}
		}
	}
	var inserted, deleted []rdf.Triple
	for _, e := range touched {
		if e.want == baseHas(e.gt) {
			continue // net no-op (e.g. inserted then deleted in one request)
		}
		if e.want {
			inserted = append(inserted, rdf.Triple{S: dict.Encode(e.gt.S), P: dict.Encode(e.gt.P), O: dict.Encode(e.gt.O)})
		} else {
			// A surviving delete's triple is present in the base graph, so
			// every term is already in the dictionary.
			s, _ := dict.Lookup(e.gt.S)
			p, _ := dict.Lookup(e.gt.P)
			o, _ := dict.Lookup(e.gt.O)
			deleted = append(deleted, rdf.Triple{S: s, P: p, O: o})
		}
	}
	stats := UpdateStats{Epoch: cur.epoch}
	if len(inserted) == 0 && len(deleted) == 0 {
		return stats, nil
	}
	// Cancellation is cooperative at phase boundaries: checked here
	// before the index/fragment builds, and again before the commit
	// point, so an expired deadline aborts without swapping — the phases
	// themselves run to completion (they are memory-bound, not I/O).
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}
	// Deterministic application order (pending is a map).
	sortTriples(inserted)
	sortTriples(deleted)

	newStore := st.Apply(inserted, deleted)
	assign := cur.dist.Assignment.WithVertices(dict, tripleEndpoints(inserted))
	newDist, rebuilt, err := cur.dist.ApplyDelta(newStore, assign, inserted, deleted)
	if err != nil {
		return UpdateStats{}, err
	}
	// Last pre-commit check: a caller whose deadline has passed must get
	// its context error and an unchanged database, not a late commit.
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}
	// Two-phase epoch broadcast over the delta: only the rebuilt
	// fragments travel; every untouched site re-tags its resident
	// fragment under the new epoch at prepare.
	sites, err := db.swapGenerations(ctx, cur.sites, newDist, cur.epoch+1, rebuilt)
	if err != nil {
		return UpdateStats{}, err
	}

	// Keep the public Graph view in step with the committed data (a
	// deleted triple loses all its instances, matching the index).
	if len(deleted) > 0 {
		drop := make(map[rdf.Triple]bool, len(deleted))
		for _, t := range deleted {
			drop[t] = true
		}
		kept := make([]rdf.Triple, 0, len(db.Graph.Triples))
		for _, t := range db.Graph.Triples {
			if !drop[t] {
				kept = append(kept, t)
			}
		}
		db.Graph.Triples = kept
	}
	db.Graph.Triples = append(db.Graph.Triples, inserted...)

	db.state.Store(&dbState{dist: newDist, eng: engine.NewWithSites(newDist, sites), sites: sites, strategy: cur.strategy, epoch: cur.epoch + 1})
	stats.Inserted, stats.Deleted = len(inserted), len(deleted)
	stats.RebuiltFragments = len(rebuilt)
	stats.Epoch = cur.epoch + 1
	return stats, nil
}

func sortTriples(ts []rdf.Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}

func tripleEndpoints(ts []rdf.Triple) []rdf.TermID {
	out := make([]rdf.TermID, 0, 2*len(ts))
	for _, t := range ts {
		out = append(out, t.S, t.O)
	}
	return out
}

// PlanPartition computes (without applying) an assignment of the
// database's graph under the named strategy into k fragments. Feed the
// result to Repartition, or inspect its cost first via PartitionCost.
func (db *DB) PlanPartition(strategyName string, k int) (*Assignment, error) {
	strat, err := strategyByName(strategyName)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("gstored: invalid site count %d", k)
	}
	return strat.Partition(db.store(), k)
}

// Advise evaluates the paper's three partitioning strategies at each
// candidate site count against an observed workload (see
// QueryLogSnapshot.Workload) and recommends the configuration with the
// smallest workload-weighted Section VII cost. With an empty workload
// the recommendation coincides with the data-only Section VII choice.
func (db *DB) Advise(w Workload, ks ...int) (*Recommendation, error) {
	s := db.load()
	if len(ks) == 0 {
		ks = []int{len(s.dist.Fragments)}
	}
	return partition.Advisor{Strategies: Strategies()}.Advise(s.dist.Global, w, ks)
}

// AdviseStrategies is Advise restricted to the named strategies (nil or
// empty means all three).
func (db *DB) AdviseStrategies(w Workload, strategyNames []string, ks ...int) (*Recommendation, error) {
	strategies := Strategies()
	if len(strategyNames) > 0 {
		strategies = strategies[:0:0]
		for _, name := range strategyNames {
			s, err := strategyByName(name)
			if err != nil {
				return nil, err
			}
			strategies = append(strategies, s)
		}
	}
	s := db.load()
	if len(ks) == 0 {
		ks = []int{len(s.dist.Fragments)}
	}
	return partition.Advisor{Strategies: strategies}.Advise(s.dist.Global, w, ks)
}

// ReplayQueryLog reads a saved JSONL query log (written by the serving
// layer) and replays it into a fresh QueryLog against db's dictionary:
// each record is compiled with ParseReadOnly and observed under its
// canonical key at its recorded multiplicity. Unparseable records are
// counted in skipped rather than failing the replay (a served log can
// contain queries from a different dataset or schema version). capacity
// sizes the log (<= 0 selects the default).
func ReplayQueryLog(db *DB, r io.Reader, capacity int) (log *QueryLog, replayed, skipped uint64, err error) {
	records, err := querylog.ReadRecords(r)
	if err != nil {
		return nil, 0, 0, err
	}
	log = querylog.New(capacity)
	for _, rec := range records {
		q, perr := db.ParseReadOnly(rec.Query)
		if perr != nil {
			skipped++
			continue
		}
		key := fmt.Sprintf("m%d|%s", db.Mode(), query.CanonicalKey(q))
		n := rec.Count
		if n == 0 {
			n = 1
		}
		log.ObserveN(key, rec.Query, q, engine.Stats{}, n)
		replayed += n
	}
	return log, replayed, skipped, nil
}

// Epoch identifies the current cluster generation; Repartition and every
// data-changing Update advance it. Results computed under different
// epochs are not interchangeable — caches keyed on queries alone must
// also key on (or flush at) the epoch. An answer can therefore never be
// served across a write: the write made a new epoch, and the old epoch's
// cache keys are unreachable.
func (db *DB) Epoch() uint64 { return db.load().epoch }

// Strategy reports the partitioning live now: StrategyName at Open,
// then whatever Repartition last applied.
func (db *DB) Strategy() string { return db.load().strategy }

// ClusterInfo reports the live strategy, site count, and epoch as one
// consistent snapshot — a single generation load, so a swap landing
// between fields cannot tear the tuple the way separate
// Strategy/NumSites/Epoch calls can.
func (db *DB) ClusterInfo() (strategy string, sites int, epoch uint64) {
	s := db.load()
	return s.strategy, len(s.dist.Fragments), s.epoch
}

// NewQueryLog returns a bounded query-workload log (capacity <= 0
// selects the default). Feed it each executed query and pass
// log.Snapshot().Workload(0) to Advise.
func NewQueryLog(capacity int) *QueryLog { return querylog.New(capacity) }

// Parse compiles SPARQL text against the database dictionary, assigning
// fresh dictionary IDs to constants the data has not seen.
func (db *DB) Parse(sparqlText string) (*QueryGraph, error) {
	return sparql.Parse(sparqlText, db.Graph.Dict)
}

// ParseReadOnly compiles SPARQL text without mutating the dictionary:
// constants absent from the data resolve to placeholder IDs that match
// nothing. Serving layers handling untrusted query streams should use
// this over Parse so clients cannot grow the shared dictionary.
func (db *DB) ParseReadOnly(sparqlText string) (*QueryGraph, error) {
	return sparql.ParseReadOnly(sparqlText, db.Graph.Dict)
}

// Query parses and executes SPARQL text under the configured mode.
//
// DB is safe for concurrent use: any number of goroutines may issue
// queries against the same database simultaneously.
func (db *DB) Query(sparqlText string) (*Result, error) {
	//lint:allow ctxflow Query is the documented context-free entry point; QueryContext is the threaded variant
	return db.QueryContext(context.Background(), sparqlText)
}

// QueryContext is Query with cooperative cancellation: when ctx is
// canceled or its deadline passes, execution stops promptly and the
// context's error is returned.
func (db *DB) QueryContext(ctx context.Context, sparqlText string) (*Result, error) {
	q, err := db.Parse(sparqlText)
	if err != nil {
		return nil, err
	}
	return db.QueryGraphContext(ctx, q)
}

// QueryGraph executes a compiled query under the configured mode.
func (db *DB) QueryGraph(q *QueryGraph) (*Result, error) {
	return db.QueryGraphMode(q, db.mode())
}

// QueryGraphContext is QueryGraph with cooperative cancellation.
func (db *DB) QueryGraphContext(ctx context.Context, q *QueryGraph) (*Result, error) {
	return db.QueryGraphModeContext(ctx, q, db.mode())
}

// QueryMode parses and executes SPARQL text under an explicit mode.
func (db *DB) QueryMode(sparqlText string, mode Mode) (*Result, error) {
	q, err := db.Parse(sparqlText)
	if err != nil {
		return nil, err
	}
	return db.QueryGraphMode(q, mode)
}

// QueryGraphMode executes a compiled query under an explicit mode.
func (db *DB) QueryGraphMode(q *QueryGraph, mode Mode) (*Result, error) {
	//lint:allow ctxflow QueryGraphMode is the documented context-free entry point; QueryGraphModeContext is the threaded variant
	return db.QueryGraphModeContext(context.Background(), q, mode)
}

// QueryGraphModeContext executes a compiled query under an explicit mode
// with cooperative cancellation.
func (db *DB) QueryGraphModeContext(ctx context.Context, q *QueryGraph, mode Mode) (*Result, error) {
	// One state load pins a consistent cluster generation for the whole
	// execution, even if Repartition swaps mid-flight.
	return db.load().eng.ExecuteContext(ctx, q, engine.Config{
		Mode:              mode,
		CandidateBits:     db.cfg.CandidateBits,
		MaxPartialMatches: db.cfg.MaxPartialMatches,
		EvalWorkers:       db.cfg.EvalWorkers,
	})
}

// QueryStream parses sparqlText and executes it in unordered
// first-row-early delivery mode; see QueryGraphStreamContext.
func (db *DB) QueryStream(ctx context.Context, sparqlText string, emit func(Row) bool) (*Result, error) {
	q, err := db.Parse(sparqlText)
	if err != nil {
		return nil, err
	}
	return db.QueryGraphStreamContext(ctx, q, emit)
}

// QueryGraphStreamContext executes a compiled query in unordered
// first-row-early delivery mode: projected rows flow to emit as the
// engine produces them — no terminal canonical sort, no materialized row
// set — and once the query's LIMIT (after OFFSET, with DISTINCT dedup
// applied at the projection boundary) is satisfied, the remaining
// distributed work is cancelled (Result.Stats.EarlyStop). The row passed
// to emit is reused between calls; copy it to retain it. Returning false
// from emit stops the execution. The returned Result carries statistics
// only — Rows is nil — and row order varies between runs.
func (db *DB) QueryGraphStreamContext(ctx context.Context, q *QueryGraph, emit func(Row) bool) (*Result, error) {
	return db.load().eng.ExecuteStream(ctx, q, engine.Config{
		Mode:              db.mode(),
		CandidateBits:     db.cfg.CandidateBits,
		MaxPartialMatches: db.cfg.MaxPartialMatches,
		EvalWorkers:       db.cfg.EvalWorkers,
	}, emit)
}

// Mode reports the engine mode queries run under: the configured mode,
// with the zero value (ModeUnset) resolving to ModeFull — a zero-value
// Config runs the complete system, matching the engine's own resolution.
func (db *DB) Mode() Mode {
	if m := db.mode(); m != engine.ModeUnset {
		return m
	}
	return ModeFull
}

func (db *DB) mode() Mode {
	// The zero value is engine.ModeUnset, which the engine resolves to
	// Full at execution time, so an unconfigured DB runs the full system.
	return db.cfg.Mode
}

// CanonicalQueryKey returns a deterministic cache key identifying q up to
// variable renaming and triple reordering; see query.CanonicalKey. Keys
// are only comparable between queries parsed against this database.
func (db *DB) CanonicalQueryKey(q *QueryGraph) string {
	return query.CanonicalKey(q)
}

// Rows renders the projected rows of a result as decoded term strings.
func (db *DB) Rows(res *Result) [][]string {
	out := make([][]string, 0, res.Len())
	res.EachProjected(func(row Row) bool {
		cells := make([]string, len(row))
		for j, id := range row {
			if id == NoTerm {
				cells[j] = "NULL"
				continue
			}
			cells[j] = db.Graph.Dict.MustDecode(id).String()
		}
		out = append(out, cells)
		return true
	})
	return out
}

// Columns returns the projected variable names of a query.
func (db *DB) Columns(q *QueryGraph) []string {
	idx := q.Projection
	if len(idx) == 0 {
		idx = make([]int, len(q.Vars))
		for i := range idx {
			idx[i] = i
		}
	}
	out := make([]string, len(idx))
	for i, v := range idx {
		out[i] = "?" + q.Vars[v]
	}
	return out
}

// NumSites reports the deployment's current site count (it changes when
// Repartition applies an assignment with a different K).
func (db *DB) NumSites() int { return len(db.load().dist.Fragments) }

// Distributed exposes the current cluster's fragments; intended for
// diagnostics and the experiment harness. The returned value is one
// immutable generation — it does not follow a later Repartition.
func (db *DB) Distributed() *fragment.Distributed { return db.load().dist }

// Store exposes the indexed global graph the partitioner and advisor
// evaluate against; intended for the serving layer and diagnostics. The
// returned store is the current generation's immutable index — it does
// not follow a later Update or Repartition.
func (db *DB) Store() *store.Store { return db.store() }

// store returns the live generation's global index.
func (db *DB) store() *store.Store { return db.load().dist.Global }

// NumTriples reports the number of triples in the live generation —
// Open's data plus every committed Update. Unlike Graph.Len it is safe
// to call concurrently with updates.
func (db *DB) NumTriples() int { return db.store().Len() }

// PartitionCost evaluates the Section VII cost model for one strategy
// without building a database.
func PartitionCost(g *Graph, strategyName string, k int) (CostBreakdown, error) {
	strat, err := strategyByName(strategyName)
	if err != nil {
		return CostBreakdown{}, err
	}
	st := store.FromGraph(g)
	a, err := strat.Partition(st, k)
	if err != nil {
		return CostBreakdown{}, err
	}
	return partition.Cost(st, a), nil
}

// GenerateLUBM returns the LUBM-style dataset at the given university
// count (0 = default) with queries LQ1-LQ7.
func GenerateLUBM(universities int) *Dataset {
	return workload.NewLUBM(workload.LUBMConfig{Universities: universities})
}

// GenerateYAGO returns the YAGO2-style dataset at the given scale
// (0 = default) with queries YQ1-YQ4.
func GenerateYAGO(scale int) *Dataset {
	return workload.NewYAGO(workload.YAGOConfig{Scale: scale})
}

// GenerateBTC returns the BTC-style dataset at the given scale
// (0 = default) with queries BQ1-BQ7.
func GenerateBTC(scale int) *Dataset {
	return workload.NewBTC(workload.BTCConfig{Scale: scale})
}
