// Package gstored is a from-scratch Go implementation of the distributed
// SPARQL engine of Peng, Zou and Guan, "Accelerating Partial Evaluation in
// Distributed SPARQL Query Evaluation" (ICDE 2019): the partial evaluation
// and assembly framework of Peng et al. (VLDB J. 25(2), 2016) accelerated
// with LEC-feature pruning, LEC-feature assembly, and internal-candidate
// bit vectors, over a simulated multi-site cluster with byte-accurate
// data-shipment accounting.
//
// Quick start:
//
//	g := gstored.GenerateLUBM(4)
//	db, err := gstored.Open(g.Graph, gstored.Config{Sites: 12})
//	if err != nil { ... }
//	res, err := db.Query(`SELECT ?x WHERE { ?x <p> ?y }`)
//	for _, row := range db.Rows(res) { fmt.Println(row) }
//
// The package re-exports the pieces a downstream user needs — RDF terms
// and graphs, N-Triples I/O, partitioning strategies and their Section VII
// cost model, the four engine modes of the paper's ablation, and the
// paper's three benchmark workload generators — while the implementation
// lives in internal packages documented in DESIGN.md.
package gstored

import (
	"context"
	"fmt"
	"io"
	"strings"

	"gstored/internal/engine"
	"gstored/internal/fragment"
	"gstored/internal/partition"
	"gstored/internal/query"
	"gstored/internal/rdf"
	"gstored/internal/sparql"
	"gstored/internal/store"
	"gstored/internal/workload"
)

// Re-exported data-model types. See the rdf internal package for full
// documentation.
type (
	// Term is one RDF term (IRI, literal or blank node).
	Term = rdf.Term
	// TermID is a dictionary-encoded term; 0 (NoTerm) means unbound.
	TermID = rdf.TermID
	// Graph is a mutable triple collection with its dictionary.
	Graph = rdf.Graph
	// Dictionary maps terms to IDs and back.
	Dictionary = rdf.Dictionary
	// QueryGraph is a compiled SPARQL basic graph pattern.
	QueryGraph = query.Graph
	// Result is a completed query execution: rows plus per-stage stats.
	Result = engine.Result
	// Row is one result row, indexed by query variable.
	Row = engine.Row
	// Stats carries the per-stage metrics of the paper's Tables I-III.
	Stats = engine.Stats
	// Mode selects the optimization level (the Fig. 9 ablation).
	Mode = engine.Mode
	// Dataset is a generated benchmark workload (graph + queries).
	Dataset = workload.Dataset
	// BenchQuery is one benchmark query with its shape/selectivity class.
	BenchQuery = workload.BenchQuery
	// CostBreakdown carries the Section VII partitioning cost terms.
	CostBreakdown = partition.CostBreakdown
)

// NoTerm is the unbound sentinel in rows and serialization vectors.
const NoTerm = rdf.NoTerm

// Engine modes, weakest to strongest (Section VIII-C ablation).
const (
	ModeBasic = engine.Basic // partial evaluation and assembly of [18]
	ModeLA    = engine.LA    // + LEC-feature-based assembly
	ModeLO    = engine.LO    // + LEC-feature-based pruning
	ModeFull  = engine.Full  // + internal-candidate bit vectors
)

// Term constructors.
var (
	// IRI returns an IRI term.
	IRI = rdf.NewIRI
	// Literal returns a plain literal term.
	Literal = rdf.NewLiteral
	// LangLiteral returns a language-tagged literal term.
	LangLiteral = rdf.NewLangLiteral
	// TypedLiteral returns a datatyped literal term.
	TypedLiteral = rdf.NewTypedLiteral
	// Blank returns a blank-node term.
	Blank = rdf.NewBlank
)

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph { return rdf.NewGraph() }

// ReadNTriples parses an N-Triples document into a new graph.
func ReadNTriples(r io.Reader) (*Graph, error) { return rdf.ReadNTriples(r) }

// WriteNTriples serializes g in canonical N-Triples.
func WriteNTriples(w io.Writer, g *Graph) error { return rdf.WriteNTriples(w, g) }

// Config tunes Open.
type Config struct {
	// Sites is the number of fragments/sites (default 12, the paper's
	// cluster size).
	Sites int
	// Strategy picks the partitioning: "hash" (default), "semantic-hash",
	// "metis", or "best" (run all three and keep the smallest Section VII
	// cost).
	Strategy string
	// Mode is the engine optimization level; the zero value runs the full
	// system (ModeFull).
	Mode Mode
	// CandidateBits sizes the Section VI bit vectors (0 = default 64 Ki).
	CandidateBits int
	// MaxPartialMatches aborts runaway queries (0 = unlimited).
	MaxPartialMatches int
}

// DB is a distributed RDF database: a partitioned graph hosted on a
// simulated cluster, ready to answer SPARQL queries.
type DB struct {
	// Graph is the source data (shared dictionary).
	Graph *Graph
	// Costs reports CostPartitioning per strategy evaluated at Open time.
	Costs map[string]CostBreakdown
	// StrategyName is the partitioning actually in use.
	StrategyName string

	cfg  Config
	dist *fragment.Distributed
	eng  *engine.Engine
}

// Strategies returns the three partitioning strategies of the paper.
func Strategies() []partition.Strategy {
	return []partition.Strategy{partition.Hash{}, partition.SemanticHash{}, partition.Metis{}}
}

func strategyByName(name string) (partition.Strategy, error) {
	switch strings.ToLower(name) {
	case "", "hash":
		return partition.Hash{}, nil
	case "semantic-hash", "semantic":
		return partition.SemanticHash{}, nil
	case "metis":
		return partition.Metis{}, nil
	default:
		return nil, fmt.Errorf("gstored: unknown partitioning strategy %q", name)
	}
}

// Open partitions g into cfg.Sites fragments with cfg.Strategy and builds
// the distributed engine over them.
func Open(g *Graph, cfg Config) (*DB, error) {
	if cfg.Sites == 0 {
		cfg.Sites = 12
	}
	if cfg.Sites < 0 {
		return nil, fmt.Errorf("gstored: invalid site count %d", cfg.Sites)
	}
	st := store.FromGraph(g)
	db := &DB{Graph: g, cfg: cfg, Costs: map[string]CostBreakdown{}}

	var assign *partition.Assignment
	if strings.EqualFold(cfg.Strategy, "best") {
		best, costs, err := partition.SelectBest(st, cfg.Sites, Strategies()...)
		if err != nil {
			return nil, err
		}
		assign, db.Costs = best, costs
	} else {
		strat, err := strategyByName(cfg.Strategy)
		if err != nil {
			return nil, err
		}
		assign, err = strat.Partition(st, cfg.Sites)
		if err != nil {
			return nil, err
		}
		db.Costs[strat.Name()] = partition.Cost(st, assign)
	}
	db.StrategyName = assign.StrategyName

	dist, err := fragment.Build(st, assign)
	if err != nil {
		return nil, err
	}
	db.dist = dist
	db.eng = engine.New(dist)
	return db, nil
}

// Parse compiles SPARQL text against the database dictionary, assigning
// fresh dictionary IDs to constants the data has not seen.
func (db *DB) Parse(sparqlText string) (*QueryGraph, error) {
	return sparql.Parse(sparqlText, db.Graph.Dict)
}

// ParseReadOnly compiles SPARQL text without mutating the dictionary:
// constants absent from the data resolve to placeholder IDs that match
// nothing. Serving layers handling untrusted query streams should use
// this over Parse so clients cannot grow the shared dictionary.
func (db *DB) ParseReadOnly(sparqlText string) (*QueryGraph, error) {
	return sparql.ParseReadOnly(sparqlText, db.Graph.Dict)
}

// Query parses and executes SPARQL text under the configured mode.
//
// DB is safe for concurrent use: any number of goroutines may issue
// queries against the same database simultaneously.
func (db *DB) Query(sparqlText string) (*Result, error) {
	return db.QueryContext(context.Background(), sparqlText)
}

// QueryContext is Query with cooperative cancellation: when ctx is
// canceled or its deadline passes, execution stops promptly and the
// context's error is returned.
func (db *DB) QueryContext(ctx context.Context, sparqlText string) (*Result, error) {
	q, err := db.Parse(sparqlText)
	if err != nil {
		return nil, err
	}
	return db.QueryGraphContext(ctx, q)
}

// QueryGraph executes a compiled query under the configured mode.
func (db *DB) QueryGraph(q *QueryGraph) (*Result, error) {
	return db.QueryGraphMode(q, db.mode())
}

// QueryGraphContext is QueryGraph with cooperative cancellation.
func (db *DB) QueryGraphContext(ctx context.Context, q *QueryGraph) (*Result, error) {
	return db.QueryGraphModeContext(ctx, q, db.mode())
}

// QueryMode parses and executes SPARQL text under an explicit mode.
func (db *DB) QueryMode(sparqlText string, mode Mode) (*Result, error) {
	q, err := db.Parse(sparqlText)
	if err != nil {
		return nil, err
	}
	return db.QueryGraphMode(q, mode)
}

// QueryGraphMode executes a compiled query under an explicit mode.
func (db *DB) QueryGraphMode(q *QueryGraph, mode Mode) (*Result, error) {
	return db.QueryGraphModeContext(context.Background(), q, mode)
}

// QueryGraphModeContext executes a compiled query under an explicit mode
// with cooperative cancellation.
func (db *DB) QueryGraphModeContext(ctx context.Context, q *QueryGraph, mode Mode) (*Result, error) {
	return db.eng.ExecuteContext(ctx, q, engine.Config{
		Mode:              mode,
		CandidateBits:     db.cfg.CandidateBits,
		MaxPartialMatches: db.cfg.MaxPartialMatches,
	})
}

// Mode reports the engine mode queries run under: the configured mode,
// with the zero value (ModeUnset) resolving to ModeFull — a zero-value
// Config runs the complete system, matching the engine's own resolution.
func (db *DB) Mode() Mode {
	if m := db.mode(); m != engine.ModeUnset {
		return m
	}
	return ModeFull
}

func (db *DB) mode() Mode {
	// The zero value is engine.ModeUnset, which the engine resolves to
	// Full at execution time, so an unconfigured DB runs the full system.
	return db.cfg.Mode
}

// CanonicalQueryKey returns a deterministic cache key identifying q up to
// variable renaming and triple reordering; see query.CanonicalKey. Keys
// are only comparable between queries parsed against this database.
func (db *DB) CanonicalQueryKey(q *QueryGraph) string {
	return query.CanonicalKey(q)
}

// Rows renders the projected rows of a result as decoded term strings.
func (db *DB) Rows(res *Result) [][]string {
	out := make([][]string, 0, res.Len())
	res.EachProjected(func(row Row) bool {
		cells := make([]string, len(row))
		for j, id := range row {
			if id == NoTerm {
				cells[j] = "NULL"
				continue
			}
			cells[j] = db.Graph.Dict.MustDecode(id).String()
		}
		out = append(out, cells)
		return true
	})
	return out
}

// Columns returns the projected variable names of a query.
func (db *DB) Columns(q *QueryGraph) []string {
	idx := q.Projection
	if len(idx) == 0 {
		idx = make([]int, len(q.Vars))
		for i := range idx {
			idx[i] = i
		}
	}
	out := make([]string, len(idx))
	for i, v := range idx {
		out[i] = "?" + q.Vars[v]
	}
	return out
}

// NumSites reports the deployment's site count.
func (db *DB) NumSites() int { return len(db.dist.Fragments) }

// Distributed exposes the underlying fragments; intended for diagnostics
// and the experiment harness.
func (db *DB) Distributed() *fragment.Distributed { return db.dist }

// PartitionCost evaluates the Section VII cost model for one strategy
// without building a database.
func PartitionCost(g *Graph, strategyName string, k int) (CostBreakdown, error) {
	strat, err := strategyByName(strategyName)
	if err != nil {
		return CostBreakdown{}, err
	}
	st := store.FromGraph(g)
	a, err := strat.Partition(st, k)
	if err != nil {
		return CostBreakdown{}, err
	}
	return partition.Cost(st, a), nil
}

// GenerateLUBM returns the LUBM-style dataset at the given university
// count (0 = default) with queries LQ1-LQ7.
func GenerateLUBM(universities int) *Dataset {
	return workload.NewLUBM(workload.LUBMConfig{Universities: universities})
}

// GenerateYAGO returns the YAGO2-style dataset at the given scale
// (0 = default) with queries YQ1-YQ4.
func GenerateYAGO(scale int) *Dataset {
	return workload.NewYAGO(workload.YAGOConfig{Scale: scale})
}

// GenerateBTC returns the BTC-style dataset at the given scale
// (0 = default) with queries BQ1-BQ7.
func GenerateBTC(scale int) *Dataset {
	return workload.NewBTC(workload.BTCConfig{Scale: scale})
}
